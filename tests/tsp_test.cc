#include <algorithm>
#include <array>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tsp/branch_and_bound.h"
#include "tsp/held_karp.h"
#include "tsp/local_search.h"
#include "tsp/nearest_neighbor.h"
#include "tsp/path_cover.h"
#include "tsp/tour.h"
#include "tsp/tsp12.h"
#include "util/random.h"

namespace pebblejoin {
namespace {

// Minimal jumps by brute force over all tours.
int64_t BruteForceJumps(const Tsp12Instance& instance) {
  const int n = instance.num_nodes();
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  int64_t best = n;  // upper bound: every step a jump
  do {
    best = std::min(best, TourJumps(instance, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Tsp12InstanceTest, GoodEdgesAndDegree) {
  const Tsp12Instance inst(PathGraph(3).ToGraph());
  EXPECT_EQ(inst.num_nodes(), 4);
  EXPECT_TRUE(inst.IsGood(inst.good().edge(0).u, inst.good().edge(0).v));
  EXPECT_EQ(inst.MaxGoodDegree(), 2);
}

TEST(TourTest, ValidityChecks) {
  const Tsp12Instance inst(CompleteGraph(3));
  EXPECT_TRUE(IsValidTour(inst, {0, 1, 2}));
  EXPECT_FALSE(IsValidTour(inst, {0, 1}));
  EXPECT_FALSE(IsValidTour(inst, {0, 1, 1}));
  EXPECT_FALSE(IsValidTour(inst, {0, 1, 3}));
}

TEST(TourTest, CostAndJumps) {
  // Path 0-1-2-3 as good graph; tour 0,1,2,3 has no jumps.
  Graph good(4);
  good.AddEdge(0, 1);
  good.AddEdge(1, 2);
  good.AddEdge(2, 3);
  const Tsp12Instance inst(good);
  EXPECT_EQ(TourJumps(inst, {0, 1, 2, 3}), 0);
  EXPECT_EQ(TourCost(inst, {0, 1, 2, 3}), 3);
  // 1-0 good, 0-2 bad, 2-3 good: one jump.
  EXPECT_EQ(TourJumps(inst, {1, 0, 2, 3}), 1);
  EXPECT_EQ(TourCost(inst, {1, 0, 2, 3}), 4);
  EXPECT_EQ(TourJumps(inst, {2, 0, 3, 1}), 3);
}

TEST(TourTest, EmptyAndSingleton) {
  const Tsp12Instance empty{Graph(0)};
  EXPECT_EQ(TourCost(empty, {}), 0);
  const Tsp12Instance one{Graph(1)};
  EXPECT_EQ(TourCost(one, {0}), 0);
}

TEST(TourTest, RunsSplitAtJumps) {
  Graph good(4);
  good.AddEdge(0, 1);
  good.AddEdge(2, 3);
  const Tsp12Instance inst(good);
  const auto runs = TourRuns(inst, {0, 1, 2, 3});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(runs[1], (std::vector<int>{2, 3}));
}

TEST(NearestNeighborTest, ProducesValidTours) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Tsp12Instance inst(RandomGraph(12, 0.3, seed));
    const Tour tour = NearestNeighborTour(inst, 0);
    EXPECT_TRUE(IsValidTour(inst, tour));
  }
}

TEST(NearestNeighborTest, ZeroJumpsOnAPath) {
  Graph good(5);
  for (int i = 0; i + 1 < 5; ++i) good.AddEdge(i, i + 1);
  const Tsp12Instance inst(good);
  EXPECT_EQ(TourJumps(inst, NearestNeighborTour(inst, 0)), 0);
}

TEST(NearestNeighborTest, RestartsNeverWorse) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Tsp12Instance inst(RandomGraph(14, 0.25, seed));
    const Tour single = NearestNeighborTour(inst, 0);
    const Tour multi = BestNearestNeighborTour(inst, 5, seed);
    EXPECT_LE(TourCost(inst, multi), TourCost(inst, single));
  }
}

TEST(PathCoverTest, ProducesValidTours) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Tsp12Instance inst(RandomGraph(15, 0.2, seed));
    const Tour tour = GreedyPathCoverTour(inst, seed);
    EXPECT_TRUE(IsValidTour(inst, tour));
  }
}

TEST(PathCoverTest, PerfectOnHamiltonianPathGraph) {
  Graph good(6);
  for (int i = 0; i + 1 < 6; ++i) good.AddEdge(i, i + 1);
  const Tsp12Instance inst(good);
  EXPECT_EQ(TourJumps(inst, GreedyPathCoverTour(inst, 3)), 0);
}

TEST(PathCoverTest, IsolatedNodesBecomeJumps) {
  const Tsp12Instance inst(Graph(4));  // no good edges at all
  const Tour tour = GreedyPathCoverTour(inst, 1);
  EXPECT_TRUE(IsValidTour(inst, tour));
  EXPECT_EQ(TourJumps(inst, tour), 3);
}

// Reference copy of GreedyPathCoverTour as it stood before the emitted
// set moved from std::vector<bool> to util/bitset.h — same rng draws,
// same greedy choices. The differential test below pins the migration to
// be a pure representation change.
Tour ReferencePathCoverTour(const Tsp12Instance& instance, uint64_t seed) {
  const int n = instance.num_nodes();
  const Graph& good = instance.good();
  Rng rng(seed);
  std::vector<int> edge_order = rng.Permutation(good.num_edges());

  std::vector<int> path_degree(n, 0);
  std::vector<std::array<int, 2>> chosen(n, {-1, -1});
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (int e : edge_order) {
    const Graph::Edge& edge = good.edge(e);
    if (path_degree[edge.u] >= 2 || path_degree[edge.v] >= 2) continue;
    const int ru = find(edge.u);
    const int rv = find(edge.v);
    if (ru == rv) continue;  // would close a cycle
    parent[ru] = rv;
    chosen[edge.u][path_degree[edge.u]++] = edge.v;
    chosen[edge.v][path_degree[edge.v]++] = edge.u;
  }

  Tour tour;
  tour.reserve(n);
  std::vector<bool> emitted(n, false);
  for (int start = 0; start < n; ++start) {
    if (emitted[start] || path_degree[start] == 2) continue;
    int prev = -1;
    int cur = start;
    while (cur != -1) {
      emitted[cur] = true;
      tour.push_back(cur);
      int next = -1;
      for (int cand : chosen[cur]) {
        if (cand != -1 && cand != prev) next = cand;
      }
      prev = cur;
      cur = (next != -1 && !emitted[next]) ? next : -1;
    }
  }
  return tour;
}

TEST(PathCoverTest, BitsetMigrationIsByteIdentical) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (double density : {0.05, 0.2, 0.5}) {
      const Tsp12Instance inst(
          RandomGraph(20 + static_cast<int>(seed % 7), density, seed));
      EXPECT_EQ(GreedyPathCoverTour(inst, seed),
                ReferencePathCoverTour(inst, seed))
          << "seed=" << seed << " density=" << density;
    }
  }
}

TEST(LocalSearchTest, NeverInvalidatesAndNeverWorsens) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Tsp12Instance inst(RandomGraph(14, 0.25, seed));
    Tour tour = NearestNeighborTour(inst, 0);
    const int64_t before = TourCost(inst, tour);
    const LocalSearchOptions options;
    TwoOptImprove(inst, &tour, options);
    EXPECT_TRUE(IsValidTour(inst, tour));
    OrOptImprove(inst, &tour, options);
    EXPECT_TRUE(IsValidTour(inst, tour));
    EXPECT_LE(TourCost(inst, tour), before);
  }
}

TEST(LocalSearchTest, ImprovementCountMatchesCostDelta) {
  for (uint64_t seed = 20; seed <= 30; ++seed) {
    const Tsp12Instance inst(RandomGraph(12, 0.3, seed));
    Tour tour = GreedyPathCoverTour(inst, seed);
    const int64_t before = TourCost(inst, tour);
    const LocalSearchOptions options;
    const int64_t removed = LocalSearchImprove(inst, &tour, options);
    EXPECT_EQ(before - TourCost(inst, tour), removed);
  }
}

TEST(LocalSearchTest, FixesAnObviousTwoOptMove) {
  // Good path 0-1-2-3-4-5 with tour 0,1,3,2,4,5: reversing [2..3] fixes it.
  Graph good(6);
  for (int i = 0; i + 1 < 6; ++i) good.AddEdge(i, i + 1);
  const Tsp12Instance inst(good);
  Tour tour{0, 1, 3, 2, 4, 5};
  const LocalSearchOptions options;
  TwoOptImprove(inst, &tour, options);
  EXPECT_EQ(TourJumps(inst, tour), 0);
}

TEST(HeldKarpTest, MatchesBruteForceOnSmallInstances) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Tsp12Instance inst(RandomGraph(7, 0.3, seed));
    const auto result = HeldKarpSolve(inst);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(IsValidTour(inst, result->tour));
    EXPECT_EQ(TourJumps(inst, result->tour), result->jumps);
    EXPECT_EQ(result->jumps, BruteForceJumps(inst)) << seed;
  }
}

TEST(HeldKarpTest, KnownOptima) {
  // Complete good graph: zero jumps.
  EXPECT_EQ(HeldKarpSolve(Tsp12Instance(CompleteGraph(8)))->jumps, 0);
  // Empty good graph on n nodes: n−1 jumps.
  EXPECT_EQ(HeldKarpSolve(Tsp12Instance(Graph(6)))->jumps, 5);
  // Cycle: zero jumps.
  EXPECT_EQ(HeldKarpSolve(Tsp12Instance(CycleGraph(9)))->jumps, 0);
}

TEST(HeldKarpTest, RefusesOversizedInstances) {
  EXPECT_FALSE(
      HeldKarpSolve(Tsp12Instance(Graph(kMaxHeldKarpNodes + 1))).has_value());
}

TEST(HeldKarpTest, TrivialSizes) {
  EXPECT_EQ(HeldKarpSolve(Tsp12Instance(Graph(0)))->cost, 0);
  EXPECT_EQ(HeldKarpSolve(Tsp12Instance(Graph(1)))->cost, 0);
}

TEST(BranchAndBoundTest, MatchesHeldKarp) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Tsp12Instance inst(RandomGraph(11, 0.25, seed));
    const auto hk = HeldKarpSolve(inst);
    const BranchAndBoundResult bnb =
        BranchAndBoundSolve(inst, BranchAndBoundOptions{});
    ASSERT_TRUE(hk.has_value());
    EXPECT_TRUE(bnb.proven_optimal);
    EXPECT_TRUE(IsValidTour(inst, bnb.best.tour));
    EXPECT_EQ(bnb.best.jumps, hk->jumps) << seed;
  }
}

TEST(BranchAndBoundTest, SolvesBeyondHeldKarpLimit) {
  // A structured 26-node instance: two disjoint 13-cycles need one jump.
  Graph good(26);
  for (int i = 0; i < 13; ++i) good.AddEdge(i, (i + 1) % 13);
  for (int i = 0; i < 13; ++i) good.AddEdge(13 + i, 13 + (i + 1) % 13);
  const Tsp12Instance inst(good);
  const BranchAndBoundResult r =
      BranchAndBoundSolve(inst, BranchAndBoundOptions{});
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(IsValidTour(inst, r.best.tour));
  EXPECT_EQ(r.best.jumps, 1);
}

}  // namespace
}  // namespace pebblejoin
