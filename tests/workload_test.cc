#include "join/workload.h"

#include "gtest/gtest.h"
#include "join/join_graph_builder.h"

namespace pebblejoin {
namespace {

TEST(EquijoinWorkloadTest, Deterministic) {
  EquijoinWorkloadOptions options;
  options.seed = 42;
  const Realization<int64_t> a = GenerateEquijoinWorkload(options);
  const Realization<int64_t> b = GenerateEquijoinWorkload(options);
  EXPECT_EQ(a.left.tuples(), b.left.tuples());
  EXPECT_EQ(a.right.tuples(), b.right.tuples());
}

TEST(EquijoinWorkloadTest, DuplicateBoundsRespected) {
  EquijoinWorkloadOptions options;
  options.num_keys = 50;
  options.min_left_dup = 2;
  options.max_left_dup = 3;
  options.min_right_dup = 1;
  options.max_right_dup = 1;
  options.key_match_rate = 1.0;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  EXPECT_GE(w.left.size(), 100);
  EXPECT_LE(w.left.size(), 150);
  EXPECT_EQ(w.right.size(), 50);
  // With full matching and right dup 1, output size == |left|.
  EXPECT_EQ(BuildEquiJoinGraph(w.left, w.right).num_edges(), w.left.size());
}

TEST(EquijoinWorkloadTest, UnmatchedKeysProduceNoEdges) {
  EquijoinWorkloadOptions options;
  options.num_keys = 30;
  options.key_match_rate = 0.0;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  EXPECT_EQ(BuildEquiJoinGraph(w.left, w.right).num_edges(), 0);
}

TEST(SetWorkloadTest, SizesAndRanges) {
  SetWorkloadOptions options;
  options.num_left = 12;
  options.num_right = 7;
  options.universe = 10;
  options.min_left_size = 1;
  options.max_left_size = 2;
  options.min_right_size = 4;
  options.max_right_size = 6;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  EXPECT_EQ(w.left.size(), 12);
  EXPECT_EQ(w.right.size(), 7);
  for (const IntSet& s : w.left.tuples()) {
    EXPECT_GE(s.size(), 1);
    EXPECT_LE(s.size(), 2);
    for (int e : s.elements()) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, 10);
    }
  }
  for (const IntSet& s : w.right.tuples()) {
    EXPECT_GE(s.size(), 4);
    EXPECT_LE(s.size(), 6);
  }
}

TEST(SetWorkloadTest, Deterministic) {
  SetWorkloadOptions options;
  options.seed = 7;
  const Realization<IntSet> a = GenerateSetWorkload(options);
  const Realization<IntSet> b = GenerateSetWorkload(options);
  for (int i = 0; i < a.left.size(); ++i) {
    EXPECT_EQ(a.left.tuple(i), b.left.tuple(i));
  }
}

TEST(RectWorkloadTest, RectsInsideSpaceWithExtents) {
  RectWorkloadOptions options;
  options.num_left = 20;
  options.num_right = 20;
  options.space = 50;
  options.min_extent = 2;
  options.max_extent = 5;
  const Realization<Rect> w = GenerateRectWorkload(options);
  auto check = [&](const Rect& r) {
    EXPECT_GE(r.x_min, 0);
    EXPECT_LE(r.x_max, 50);
    EXPECT_GE(r.y_min, 0);
    EXPECT_LE(r.y_max, 50);
    EXPECT_GE(r.x_max - r.x_min, 2.0);
    EXPECT_LE(r.x_max - r.x_min, 5.0);
    EXPECT_GE(r.y_max - r.y_min, 2.0);
    EXPECT_LE(r.y_max - r.y_min, 5.0);
  };
  for (const Rect& r : w.left.tuples()) check(r);
  for (const Rect& r : w.right.tuples()) check(r);
}

TEST(RectWorkloadTest, Deterministic) {
  RectWorkloadOptions options;
  options.seed = 5;
  const Realization<Rect> a = GenerateRectWorkload(options);
  const Realization<Rect> b = GenerateRectWorkload(options);
  EXPECT_EQ(a.left.tuple(0).x_min, b.left.tuple(0).x_min);
  EXPECT_EQ(a.right.tuple(3).y_max, b.right.tuple(3).y_max);
}

}  // namespace
}  // namespace pebblejoin
