#include "core/analyzer.h"

#include "core/classifier.h"
#include "core/report.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/realizers.h"
#include "join/workload.h"
#include "pebble/scheme_verifier.h"

namespace pebblejoin {
namespace {

TEST(ClassifierTest, EquijoinShapeDetected) {
  const JoinGraphClassification c =
      ClassifyJoinGraph(CompleteBipartite(3, 3).ToGraph());
  EXPECT_TRUE(c.equijoin_shape);
  EXPECT_EQ(c.realizable_as, PredicateClass::kEquality);
  EXPECT_EQ(c.bounds.lower, 9);
}

TEST(ClassifierTest, GeneralShapeFallsToSetContainment) {
  const JoinGraphClassification c =
      ClassifyJoinGraph(WorstCaseFamily(4).ToGraph());
  EXPECT_FALSE(c.equijoin_shape);
  EXPECT_EQ(c.realizable_as, PredicateClass::kSetContainment);
}

TEST(AnalyzerTest, EquijoinIsPerfect) {
  const JoinAnalyzer analyzer;
  KeyRelation r("R", {1, 1, 2, 3});
  KeyRelation s("S", {1, 2, 2, 4});
  const JoinAnalysis a = analyzer.AnalyzeEquiJoin(r, s);
  EXPECT_EQ(a.predicate, PredicateClass::kEquality);
  EXPECT_EQ(a.output_size, 4);  // 2·1 + 1·2 + 0 + 0
  EXPECT_TRUE(a.perfect);
  EXPECT_DOUBLE_EQ(a.cost_ratio, 1.0);
  EXPECT_TRUE(a.classification.equijoin_shape);
}

TEST(AnalyzerTest, EquijoinWorkloadAlwaysPerfect) {
  const JoinAnalyzer analyzer;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 25;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const JoinAnalysis a = analyzer.AnalyzeEquiJoin(w.left, w.right);
    EXPECT_TRUE(a.perfect) << seed;
    EXPECT_EQ(a.solution.effective_cost, a.output_size);
  }
}

TEST(AnalyzerTest, SetContainmentAnalysis) {
  const JoinAnalyzer analyzer;
  SetWorkloadOptions options;
  options.num_left = 20;
  options.num_right = 20;
  options.universe = 10;
  options.min_right_size = 4;
  options.max_right_size = 8;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  const JoinAnalysis a = analyzer.AnalyzeSetContainment(w.left, w.right);
  EXPECT_EQ(a.predicate, PredicateClass::kSetContainment);
  EXPECT_GE(a.cost_ratio, 1.0);
  EXPECT_LE(a.solution.effective_cost,
            a.classification.bounds.upper_general);
}

TEST(AnalyzerTest, SpatialWorstCaseInstanceNotPerfect) {
  const JoinAnalyzer analyzer;
  const Realization<Rect> inst = RealizeWorstCaseAsSpatial(6);
  const JoinAnalysis a = analyzer.AnalyzeSpatialOverlap(inst.left, inst.right);
  EXPECT_EQ(a.predicate, PredicateClass::kSpatialOverlap);
  EXPECT_EQ(a.output_size, 12);
  EXPECT_FALSE(a.perfect);  // Theorem 3.3: π > m for this family
  EXPECT_FALSE(a.classification.equijoin_shape);
}

TEST(AnalyzerTest, SolverChoiceExactMatchesClosedForm) {
  AnalyzerOptions options;
  options.solver = SolverChoice::kExact;
  const JoinAnalyzer analyzer(options);
  const JoinAnalysis a = analyzer.AnalyzeJoinGraph(
      WorstCaseFamily(5), PredicateClass::kSetContainment);
  EXPECT_EQ(a.solution.effective_cost, WorstCaseFamilyOptimalCost(5));
}

TEST(AnalyzerTest, AllSolverChoicesProduceValidSchemes) {
  const BipartiteGraph g = RandomConnectedBipartite(5, 5, 13, 3);
  for (SolverChoice choice :
       {SolverChoice::kAuto, SolverChoice::kSortMerge,
        SolverChoice::kGreedyWalk, SolverChoice::kDfsTree,
        SolverChoice::kLocalSearch, SolverChoice::kIls,
        SolverChoice::kExact}) {
    AnalyzerOptions options;
    options.solver = choice;
    const JoinAnalyzer analyzer(options);
    const JoinAnalysis a =
        analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral);
    EXPECT_TRUE(VerifyScheme(g.ToGraph(), a.solution.scheme).valid);
    EXPECT_GE(a.solution.effective_cost, a.output_size);
  }
}

TEST(AnalyzerTest, EmptyJoin) {
  const JoinAnalyzer analyzer;
  KeyRelation r("R", {1});
  KeyRelation s("S", {2});
  const JoinAnalysis a = analyzer.AnalyzeEquiJoin(r, s);
  EXPECT_EQ(a.output_size, 0);
  EXPECT_TRUE(a.perfect);  // vacuously: cost 0 == m 0
  EXPECT_DOUBLE_EQ(a.cost_ratio, 1.0);
}

TEST(ReportTest, ContainsKeyFields) {
  const JoinAnalyzer analyzer;
  KeyRelation r("R", {1, 2});
  KeyRelation s("S", {1, 2});
  const std::string report = FormatAnalysis(analyzer.AnalyzeEquiJoin(r, s));
  EXPECT_NE(report.find("equijoin"), std::string::npos);
  EXPECT_NE(report.find("perfect"), std::string::npos);
  EXPECT_NE(report.find("pi(G) bounds"), std::string::npos);
  EXPECT_NE(report.find("2 x 2"), std::string::npos);
}

TEST(ReportTest, NonPerfectHasNoPerfectTag) {
  AnalyzerOptions options;
  options.solver = SolverChoice::kExact;
  const JoinAnalyzer analyzer(options);
  const std::string report = FormatAnalysis(analyzer.AnalyzeJoinGraph(
      WorstCaseFamily(4), PredicateClass::kSpatialOverlap));
  EXPECT_EQ(report.find("(perfect)"), std::string::npos);
  EXPECT_NE(report.find("spatial-overlap"), std::string::npos);
}

}  // namespace
}  // namespace pebblejoin
