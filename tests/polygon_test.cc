#include "join/polygon.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"

namespace pebblejoin {
namespace {

TEST(ConvexPolygonTest, FromRectRoundTrip) {
  const Rect r{1, 3, 2, 5};
  const ConvexPolygon p = ConvexPolygon::FromRect(r);
  EXPECT_EQ(p.size(), 4);
  const Rect box = p.BoundingBox();
  EXPECT_EQ(box.x_min, 1);
  EXPECT_EQ(box.x_max, 3);
  EXPECT_EQ(box.y_min, 2);
  EXPECT_EQ(box.y_max, 5);
}

TEST(ConvexPolygonTest, RegularPolygonShape) {
  const ConvexPolygon hex = ConvexPolygon::Regular(6, 0, 0, 1);
  EXPECT_EQ(hex.size(), 6);
  const Rect box = hex.BoundingBox();
  EXPECT_NEAR(box.x_max, 1.0, 1e-9);
  EXPECT_NEAR(box.x_min, -1.0, 1e-9);
}

TEST(ConvexPolygonDeathTest, RejectsNonConvexOrder) {
  // A "bowtie" (self-intersecting) vertex order is rejected.
  EXPECT_DEATH(ConvexPolygon::Of({{0, 0}, {1, 1}, {1, 0}, {0, 1}}),
               "convex");
}

TEST(ConvexPolygonOverlapTest, BasicCases) {
  const ConvexPolygon a = ConvexPolygon::FromRect({0, 2, 0, 2});
  const ConvexPolygon b = ConvexPolygon::FromRect({1, 3, 1, 3});
  const ConvexPolygon c = ConvexPolygon::FromRect({5, 6, 5, 6});
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
}

TEST(ConvexPolygonOverlapTest, TouchingCounts) {
  const ConvexPolygon a = ConvexPolygon::FromRect({0, 1, 0, 1});
  const ConvexPolygon b = ConvexPolygon::FromRect({1, 2, 0, 1});
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(ConvexPolygonOverlapTest, RotatedSeparation) {
  // Two unit diamonds: axis-aligned bounding boxes overlap, the diamonds
  // do not — the case that defeats a bbox-only test.
  const ConvexPolygon a =
      ConvexPolygon::Of({{1, 0}, {2, 1}, {1, 2}, {0, 1}});
  const ConvexPolygon b =
      ConvexPolygon::Of({{2.9, 1.9}, {3.9, 2.9}, {2.9, 3.9}, {1.9, 2.9}});
  EXPECT_TRUE(a.BoundingBox().Overlaps(b.BoundingBox()));
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(ConvexPolygonOverlapTest, ContainmentIsOverlap) {
  const ConvexPolygon outer = ConvexPolygon::FromRect({0, 10, 0, 10});
  const ConvexPolygon inner = ConvexPolygon::Regular(5, 5, 5, 1);
  EXPECT_TRUE(outer.Overlaps(inner));
  EXPECT_TRUE(inner.Overlaps(outer));
}

TEST(ConvexPolygonOverlapTest, DegeneratePointAndSegment) {
  const ConvexPolygon point = ConvexPolygon::Of({{1, 1}});
  const ConvexPolygon same_point = ConvexPolygon::Of({{1, 1}});
  const ConvexPolygon other_point = ConvexPolygon::Of({{2, 2}});
  EXPECT_TRUE(point.Overlaps(same_point));
  EXPECT_FALSE(point.Overlaps(other_point));

  const ConvexPolygon segment = ConvexPolygon::Of({{0, 0}, {2, 2}});
  EXPECT_TRUE(segment.Overlaps(point));
  const ConvexPolygon rect = ConvexPolygon::FromRect({0, 3, 0, 3});
  EXPECT_TRUE(segment.Overlaps(rect));
  // Collinear but disjoint segments.
  const ConvexPolygon far_segment = ConvexPolygon::Of({{3, 3}, {4, 4}});
  EXPECT_FALSE(segment.Overlaps(far_segment));
}

TEST(PolygonJoinBuilderTest, MatchesNestedLoop) {
  // Random triangles and hexagons across a small space.
  PolygonRelation left("R");
  PolygonRelation right("S");
  for (int i = 0; i < 15; ++i) {
    left.Add(ConvexPolygon::Regular(3, (i * 7) % 20, (i * 3) % 15,
                                    1.0 + i % 3, 0.3 * i));
    right.Add(ConvexPolygon::Regular(6, (i * 5) % 18, (i * 11) % 13,
                                     0.8 + i % 2, 0.1 * i));
  }
  const BipartiteGraph fast = BuildPolygonOverlapJoinGraph(left, right);
  const BipartiteGraph slow =
      BuildJoinGraphNestedLoop(left, right, PolygonOverlapPredicate());
  EXPECT_TRUE(fast.SameEdgeSet(slow));
  EXPECT_GT(fast.num_edges(), 0);
}

TEST(PolygonRealizerTest, ReproducesWorstCaseFamily) {
  // Lemma 3.4 with genuinely non-rectangular polygons.
  for (int n = 3; n <= 10; ++n) {
    const PolygonRealization inst = RealizeWorstCaseAsPolygons(n);
    const BipartiteGraph rebuilt =
        BuildPolygonOverlapJoinGraph(inst.left, inst.right);
    EXPECT_TRUE(rebuilt.SameEdgeSet(WorstCaseFamily(n))) << n;
  }
}

TEST(PolygonRealizerTest, UsesNonRectangularShapes) {
  const PolygonRealization inst = RealizeWorstCaseAsPolygons(3);
  EXPECT_EQ(inst.left.tuple(1).size(), 6);   // hexagon
  EXPECT_EQ(inst.right.tuple(0).size(), 3);  // triangle
}

}  // namespace
}  // namespace pebblejoin
