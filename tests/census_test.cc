#include "graph/census.h"

#include <algorithm>
#include <unordered_set>

#include "graph/components.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "pebble/bounds.h"
#include "solver/exact_pebbler.h"
#include "util/random.h"

namespace pebblejoin {
namespace {

TEST(CanonicalKeyTest, IsomorphicGraphsShareKeys) {
  // Relabeling rows/columns must not change the key.
  Rng rng(3);
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const BipartiteGraph g = RandomBipartite(4, 4, 0.4, seed);
    const std::vector<int> row_perm = rng.Permutation(4);
    const std::vector<int> col_perm = rng.Permutation(4);
    BipartiteGraph permuted(4, 4);
    for (const BipartiteGraph::Edge& e : g.edges()) {
      permuted.AddEdge(row_perm[e.left], col_perm[e.right]);
    }
    EXPECT_EQ(CanonicalBipartiteKey(g), CanonicalBipartiteKey(permuted));
  }
}

TEST(CanonicalKeyTest, SwapInvarianceForEqualSides) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  BipartiteGraph swapped(3, 3);  // transpose
  swapped.AddEdge(0, 0);
  swapped.AddEdge(1, 0);
  swapped.AddEdge(2, 1);
  EXPECT_EQ(CanonicalBipartiteKey(g), CanonicalBipartiteKey(swapped));
}

TEST(CanonicalKeyTest, DifferentGraphsDiffer) {
  BipartiteGraph path(2, 2);  // path: L0-R0, R0-L1, L1-R1
  path.AddEdge(0, 0);
  path.AddEdge(1, 0);
  path.AddEdge(1, 1);
  BipartiteGraph star(2, 2);  // star + isolated-ish: L0-R0, L0-R1, L1-R0
  star.AddEdge(0, 0);
  star.AddEdge(0, 1);
  star.AddEdge(1, 0);
  // Both have 3 edges but the path and the "claw" differ... in 2x2 they
  // are actually isomorphic (both are P4). Use degree sequences that
  // genuinely differ instead:
  BipartiteGraph full(2, 2);
  full.AddEdge(0, 0);
  full.AddEdge(0, 1);
  full.AddEdge(1, 0);
  full.AddEdge(1, 1);
  EXPECT_NE(CanonicalBipartiteKey(path), CanonicalBipartiteKey(full));
}

TEST(EnumerateTest, KnownCounts) {
  // 2x2 with 3 edges: every such spanning graph is a path P4 — 1 class.
  EXPECT_EQ(EnumerateConnectedBipartite(2, 2, 3).size(), 1u);
  // 2x2 with 4 edges: K_{2,2} — 1 class.
  EXPECT_EQ(EnumerateConnectedBipartite(2, 2, 4).size(), 1u);
  // 2x2 with 2 edges: cannot span 4 vertices connectedly... a connected
  // graph on 4 vertices needs >= 3 edges.
  EXPECT_EQ(EnumerateConnectedBipartite(2, 2, 2).size(), 0u);
  // 1x3 with 3 edges: the star K_{1,3} — 1 class.
  EXPECT_EQ(EnumerateConnectedBipartite(1, 3, 3).size(), 1u);
  // 2x3 spanning trees (5 vertices, 4 edges): two classes (the path P5
  // and the "T" / spider with leg lengths 2,1,1 rooted appropriately).
  EXPECT_EQ(EnumerateConnectedBipartite(2, 3, 4).size(), 2u);
}

TEST(EnumerateTest, AllResultsConnectedSpanningDistinct) {
  for (int edges = 4; edges <= 9; ++edges) {
    const std::vector<BipartiteGraph> classes =
        EnumerateConnectedBipartite(3, 3, edges);
    std::unordered_set<uint64_t> keys;
    for (const BipartiteGraph& g : classes) {
      EXPECT_EQ(g.num_edges(), edges);
      EXPECT_TRUE(IsConnectedIgnoringIsolated(g.ToGraph()));
      for (int l = 0; l < 3; ++l) EXPECT_GE(g.LeftDegree(l), 1);
      for (int r = 0; r < 3; ++r) EXPECT_GE(g.RightDegree(r), 1);
      EXPECT_TRUE(keys.insert(CanonicalBipartiteKey(g)).second);
    }
  }
}

TEST(CensusTest, Theorem31ExhaustiveOnThreeByThree) {
  // EVERY connected bipartite graph on 3+3 vertices respects
  // m <= π <= m + ⌊(m−1)/4⌋ — not a sample, the whole space.
  const ExactPebbler exact;
  int total = 0;
  for (int edges = 5; edges <= 9; ++edges) {
    for (const BipartiteGraph& g :
         EnumerateConnectedBipartite(3, 3, edges)) {
      const Graph flat = g.ToGraph();
      const auto pi = exact.OptimalEffectiveCost(flat);
      ASSERT_TRUE(pi.has_value());
      EXPECT_GE(*pi, edges) << g.DebugString();
      EXPECT_LE(*pi, DfsUpperBoundForConnected(edges)) << g.DebugString();
      ++total;
    }
  }
  EXPECT_GT(total, 8);  // the census is not vacuous (10 classes exist)
}

TEST(CensusTest, WorstCaseG3AppearsInItsClass) {
  // G₃ lives in the 4x3 census with 6 edges and is (one of) the extremal
  // graphs there: π = 7 = bound.
  const ExactPebbler exact;
  const uint64_t g3_key = CanonicalBipartiteKey(WorstCaseFamily(3));
  bool found = false;
  int64_t max_pi = 0;
  for (const BipartiteGraph& g : EnumerateConnectedBipartite(4, 3, 6)) {
    const auto pi = exact.OptimalEffectiveCost(g.ToGraph());
    ASSERT_TRUE(pi.has_value());
    max_pi = std::max(max_pi, *pi);
    if (CanonicalBipartiteKey(g) == g3_key) {
      found = true;
      EXPECT_EQ(*pi, WorstCaseFamilyOptimalCost(3));
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(max_pi, WorstCaseFamilyOptimalCost(3));  // nothing is worse
}

}  // namespace
}  // namespace pebblejoin
