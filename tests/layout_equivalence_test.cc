// The differential harness pinning the PR's core contract: the CSR layout
// (AnalyzerOptions::layout = kCsr, the default) and the legacy
// vector-of-vectors layout (kLegacy) produce byte-identical SolveOutcome
// JSON — same schemes, same costs, same classification, same per-component
// outcomes — modulo the timing keys NormalizeTimings() zeroes. The corpus
// runs every instance at threads 1 and 8 (output is thread-count-invariant
// by the ComponentPebbler merge contract, so all four runs must agree),
// across a ~900-seed mix of random, structured, and adversarial families.
//
// Every check runs under a SCOPED_TRACE carrying the seed/family, so a
// divergence prints the exact instance to replay with
// `pebblejoin solve --layout legacy` vs `--layout csr`.

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/report.h"
#include "engine/names.h"
#include "graph/generators.h"
#include "json_test_util.h"

namespace pebblejoin {
namespace {

// One full pipeline run; returns the timing-normalized analysis JSON.
std::string RunJson(const BipartiteGraph& g, GraphLayout layout, int threads,
                    SolverChoice solver) {
  AnalyzerOptions options;
  options.layout = layout;
  options.threads = threads;
  options.solver = solver;
  const JoinAnalyzer analyzer(options);
  return NormalizeTimings(
      AnalysisJson(analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral)));
}

// Asserts all four (layout x threads) runs produce one identical document.
void ExpectLayoutEquivalence(const BipartiteGraph& g, SolverChoice solver) {
  const std::string csr1 = RunJson(g, GraphLayout::kCsr, 1, solver);
  const std::string legacy1 = RunJson(g, GraphLayout::kLegacy, 1, solver);
  ASSERT_EQ(csr1, legacy1) << "layout divergence at threads=1";
  const std::string csr8 = RunJson(g, GraphLayout::kCsr, 8, solver);
  const std::string legacy8 = RunJson(g, GraphLayout::kLegacy, 8, solver);
  ASSERT_EQ(csr8, legacy8) << "layout divergence at threads=8";
  ASSERT_EQ(csr1, csr8) << "thread-count divergence under csr";
}

// A mixed random instance: connected, uniform (possibly disconnected, with
// isolated vertices), or a disjoint union of connected blocks.
BipartiteGraph RandomMixedInstance(uint64_t seed) {
  std::mt19937_64 rng(seed);
  switch (rng() % 3) {
    case 0: {
      const int left = 2 + static_cast<int>(rng() % 4);
      const int right = 2 + static_cast<int>(rng() % 4);
      const int min_m = left + right - 1;
      const int max_m = left * right;
      const int m = min_m + static_cast<int>(rng() % (max_m - min_m + 1));
      return RandomConnectedBipartite(left, right, m, rng());
    }
    case 1: {
      const int left = 1 + static_cast<int>(rng() % 5);
      const int right = 1 + static_cast<int>(rng() % 5);
      const int m = static_cast<int>(rng() % (left * right + 1));
      return RandomBipartiteWithEdges(left, right, m, rng());
    }
    default: {
      const auto block = [&rng] {
        const int left = 2 + static_cast<int>(rng() % 3);
        const int right = 2 + static_cast<int>(rng() % 3);
        const int min_m = left + right - 1;
        const int max_m = left * right;
        const int m = min_m + static_cast<int>(rng() % (max_m - min_m + 1));
        return RandomConnectedBipartite(left, right, m, rng());
      };
      BipartiteGraph g = block();
      const int blocks = 1 + static_cast<int>(rng() % 3);
      for (int b = 0; b < blocks; ++b) {
        g = DisjointUnion(g, block());
      }
      return g;
    }
  }
}

// The bulk of the corpus: 600 random instances under the default solver
// pick (kAuto routes per classification), each at both layouts and both
// thread counts.
TEST(LayoutEquivalenceTest, RandomCorpusAutoSolver) {
  for (uint64_t seed = 0; seed < 600; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    ExpectLayoutEquivalence(RandomMixedInstance(seed), SolverChoice::kAuto);
  }
}

// Every solver choice exercised explicitly — each routes through different
// hot loops (greedy walk cursors, dfs-tree line graphs, ils/local-search
// tours, exact Held-Karp/B&B, fallback ladder), and each must be
// layout-invariant on its own.
TEST(LayoutEquivalenceTest, EverySolverChoice) {
  const SolverChoice solvers[] = {
      SolverChoice::kAuto,       SolverChoice::kSortMerge,
      SolverChoice::kGreedyWalk, SolverChoice::kDfsTree,
      SolverChoice::kLocalSearch, SolverChoice::kIls,
      SolverChoice::kExact,      SolverChoice::kFallback,
  };
  for (const SolverChoice solver : solvers) {
    for (uint64_t seed = 100; seed < 130; ++seed) {
      SCOPED_TRACE(std::string("solver=") + SolverChoiceName(solver) +
                   " seed=" + std::to_string(seed));
      ExpectLayoutEquivalence(RandomMixedInstance(seed), solver);
    }
  }
}

// Structured and adversarial families: the shapes with special-cased
// classifications (complete bipartite, matchings, paths, cycles, stars)
// plus the Theorem 3.3 worst-case family whose line graph is dense.
TEST(LayoutEquivalenceTest, StructuredFamilies) {
  for (int k = 1; k <= 4; ++k) {
    for (int l = 1; l <= 4; ++l) {
      SCOPED_TRACE("complete k=" + std::to_string(k) +
                   " l=" + std::to_string(l));
      ExpectLayoutEquivalence(CompleteBipartite(k, l), SolverChoice::kAuto);
    }
  }
  for (int m : {1, 2, 5, 9}) {
    SCOPED_TRACE("matching m=" + std::to_string(m));
    ExpectLayoutEquivalence(MatchingGraph(m), SolverChoice::kAuto);
    SCOPED_TRACE("path m=" + std::to_string(m));
    ExpectLayoutEquivalence(PathGraph(m), SolverChoice::kAuto);
    SCOPED_TRACE("star m=" + std::to_string(m));
    ExpectLayoutEquivalence(StarGraph(m), SolverChoice::kAuto);
  }
  for (int k : {2, 3, 5}) {
    SCOPED_TRACE("cycle k=" + std::to_string(k));
    ExpectLayoutEquivalence(EvenCycle(k), SolverChoice::kAuto);
  }
  for (int n : {3, 4, 5, 6}) {
    SCOPED_TRACE("worstcase n=" + std::to_string(n));
    ExpectLayoutEquivalence(WorstCaseFamily(n), SolverChoice::kAuto);
    ExpectLayoutEquivalence(WorstCaseFamily(n), SolverChoice::kFallback);
  }
}

}  // namespace
}  // namespace pebblejoin
