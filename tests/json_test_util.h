// Shared test helper: strip wall-clock noise out of analysis JSON so
// byte-identity assertions compare structure and costs, not timers.

#ifndef PEBBLEJOIN_TESTS_JSON_TEST_UTIL_H_
#define PEBBLEJOIN_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <string>

namespace pebblejoin {

// Zeroes the values of timing-dependent JSON keys in place, leaving every
// structural and cost field intact: any key ending in "_us" (stage,
// per-attempt, and per-component wall clocks, percentile estimates,
// journal timestamps) or "_ms" (budget bookkeeping, batch latencies),
// plus the budget poll count, whose value is clock- or stride-dependent.
// Hardware-counter keys (obs/prof.h) are exactly as run-dependent, so the
// "_cycles"/"_insns"/"_instructions"/"_references"/"_misses" suffixes and
// the per-rung "cycles" field zero out too.
// The writer emits compact `"key":<int>` members, so a linear scan
// suffices. tools/json_normalize.py applies the same rule to CLI output
// in the shell-level tests.
inline std::string NormalizeTimings(std::string json) {
  const auto ends_with = [](const std::string& key, const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return key.size() > n && key.compare(key.size() - n, n, suffix) == 0;
  };
  size_t pos = 0;
  while ((pos = json.find("\":", pos)) != std::string::npos) {
    // The key that just closed: ["start, pos) with start after the quote.
    const size_t key_end = pos;
    size_t key_begin = key_end;
    while (key_begin > 0 && json[key_begin - 1] != '"') --key_begin;
    const std::string key = json.substr(key_begin, key_end - key_begin);
    pos += 2;  // past ":
    const bool timing =
        ends_with(key, "_us") || ends_with(key, "_ms") ||
        ends_with(key, "_cycles") || ends_with(key, "_insns") ||
        ends_with(key, "_instructions") || ends_with(key, "_references") ||
        ends_with(key, "_misses") || key == "budget_polls" ||
        key == "cycles";
    if (!timing) continue;
    size_t value_end = pos;
    while (value_end < json.size() &&
           (json[value_end] == '-' ||
            std::isdigit(static_cast<unsigned char>(json[value_end])))) {
      ++value_end;
    }
    if (value_end == pos) continue;  // not a bare integer value
    json.replace(pos, value_end - pos, "0");
  }
  return json;
}

}  // namespace pebblejoin

#endif  // PEBBLEJOIN_TESTS_JSON_TEST_UTIL_H_
