#include "graph/generators.h"

#include "graph/components.h"
#include "graph/graph_properties.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(CompleteBipartiteTest, SizesAndCompleteness) {
  const BipartiteGraph g = CompleteBipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12);
  for (int l = 0; l < 3; ++l) {
    for (int r = 0; r < 4; ++r) EXPECT_TRUE(g.HasEdge(l, r));
  }
}

TEST(MatchingTest, Shape) {
  const Graph g = MatchingGraph(6).ToGraph();
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(MaxDegree(g), 1);
  EXPECT_EQ(BettiZero(g), 6);
}

TEST(PathTest, ShapeForEvenAndOdd) {
  for (int m = 1; m <= 8; ++m) {
    const Graph g = PathGraph(m).ToGraph();
    EXPECT_EQ(g.num_edges(), m);
    EXPECT_EQ(BettiZero(g), 1);
    EXPECT_LE(MaxDegree(g), 2);
    const std::vector<int> hist = DegreeHistogram(g);
    EXPECT_EQ(hist[1], 2);  // exactly two endpoints
  }
}

TEST(EvenCycleTest, Shape) {
  for (int k = 2; k <= 6; ++k) {
    const Graph g = EvenCycle(k).ToGraph();
    EXPECT_EQ(g.num_edges(), 2 * k);
    EXPECT_EQ(BettiZero(g), 1);
    EXPECT_EQ(MaxDegree(g), 2);
    EXPECT_EQ(DegreeHistogram(g)[2], 2 * k);  // every vertex degree 2
  }
}

TEST(StarTest, Shape) {
  const Graph g = StarGraph(5).ToGraph();
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.Degree(0), 5);
}

TEST(WorstCaseFamilyTest, Shape) {
  for (int n = 3; n <= 8; ++n) {
    const BipartiteGraph g = WorstCaseFamily(n);
    EXPECT_EQ(g.left_size(), n + 1);
    EXPECT_EQ(g.right_size(), n);
    EXPECT_EQ(g.num_edges(), 2 * n);
    // Hub degree n; every private left vertex degree 1; right degree 2.
    EXPECT_EQ(g.LeftDegree(0), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(g.LeftDegree(1 + i), 1);
      EXPECT_EQ(g.RightDegree(i), 2);
    }
    EXPECT_EQ(BettiZero(g.ToGraph()), 1);
    // Edge id convention used elsewhere: 2i = spoke, 2i+1 = pendant.
    EXPECT_EQ(g.edge(2 * (n - 1)).left, 0);
    EXPECT_EQ(g.edge(2 * (n - 1) + 1).left, n);
  }
}

TEST(RandomBipartiteTest, ProbabilityExtremes) {
  EXPECT_EQ(RandomBipartite(5, 5, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(RandomBipartite(5, 5, 1.0, 1).num_edges(), 25);
}

TEST(RandomBipartiteTest, Deterministic) {
  const BipartiteGraph a = RandomBipartite(10, 10, 0.3, 77);
  const BipartiteGraph b = RandomBipartite(10, 10, 0.3, 77);
  EXPECT_TRUE(a.SameEdgeSet(b));
}

TEST(RandomBipartiteWithEdgesTest, ExactCount) {
  for (int m : {0, 1, 10, 40, 100}) {
    const BipartiteGraph g = RandomBipartiteWithEdges(10, 10, m, 5);
    EXPECT_EQ(g.num_edges(), m);
  }
}

TEST(RandomBipartiteWithEdgesTest, DenseSamplingPath) {
  // m close to full forces the subset-sampling branch.
  const BipartiteGraph g = RandomBipartiteWithEdges(6, 6, 34, 9);
  EXPECT_EQ(g.num_edges(), 34);
}

TEST(RandomConnectedBipartiteTest, ConnectedWithExactEdges) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const BipartiteGraph g = RandomConnectedBipartite(6, 8, 20, seed);
    EXPECT_EQ(g.num_edges(), 20);
    const Graph flat = g.ToGraph();
    EXPECT_EQ(BettiZero(flat), 1);
    EXPECT_EQ(NumNonIsolatedVertices(flat), 14);  // spanning
  }
}

TEST(RandomConnectedBipartiteTest, TreeCase) {
  const BipartiteGraph g = RandomConnectedBipartite(4, 5, 8, 3);
  EXPECT_EQ(g.num_edges(), 8);  // exactly a spanning tree
  EXPECT_EQ(BettiZero(g.ToGraph()), 1);
}

TEST(DisjointUnionTest, ShiftsIdsCorrectly) {
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(1, 2), MatchingGraph(2));
  EXPECT_EQ(u.left_size(), 3);
  EXPECT_EQ(u.right_size(), 4);
  EXPECT_EQ(u.num_edges(), 4);
  EXPECT_TRUE(u.HasEdge(0, 0));
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(1, 2));
  EXPECT_TRUE(u.HasEdge(2, 3));
  EXPECT_EQ(BettiZero(u.ToGraph()), 3);
}

TEST(RandomGraphTest, ExtremesAndDeterminism) {
  EXPECT_EQ(RandomGraph(6, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(RandomGraph(6, 1.0, 1).num_edges(), 15);
  EXPECT_EQ(RandomGraph(12, 0.4, 9).num_edges(),
            RandomGraph(12, 0.4, 9).num_edges());
}

TEST(RandomConnectedBoundedDegreeTest, RespectsBoundAndConnectivity) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = RandomConnectedBoundedDegree(15, 4, 10, seed);
    EXPECT_LE(MaxDegree(g), 4);
    EXPECT_EQ(BettiZero(g), 1);
    EXPECT_GE(g.num_edges(), 14);  // at least the spanning tree
  }
}

TEST(RandomConnectedBoundedDegreeTest, DegreeThreeWorks) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = RandomConnectedBoundedDegree(12, 3, 6, seed);
    EXPECT_LE(MaxDegree(g), 3);
    EXPECT_EQ(BettiZero(g), 1);
  }
}

TEST(CompleteAndCycleGraphTest, Shapes) {
  EXPECT_EQ(CompleteGraph(5).num_edges(), 10);
  EXPECT_EQ(CycleGraph(5).num_edges(), 5);
  EXPECT_EQ(MaxDegree(CycleGraph(5)), 2);
}

}  // namespace
}  // namespace pebblejoin
