#include "exec/join_executors.h"

#include <algorithm>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"
#include "pebble/scheme_verifier.h"

namespace pebblejoin {
namespace {

// All executors must emit each joining pair exactly once.
void ExpectCompleteResults(const KeyRelation& left, const KeyRelation& right,
                           const ExecutionTrace& trace) {
  const BipartiteGraph expected = BuildEquiJoinGraph(left, right);
  ASSERT_EQ(static_cast<int>(trace.results.size()), expected.num_edges());
  std::vector<std::pair<int, int>> sorted = trace.results;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (const auto& [i, j] : sorted) {
    EXPECT_TRUE(expected.HasEdge(i, j)) << i << "," << j;
  }
}

// The trace must be a valid pebbling scheme of the join graph.
VerificationResult VerifyTrace(const KeyRelation& left,
                               const KeyRelation& right,
                               const ExecutionTrace& trace) {
  const Graph g = BuildEquiJoinGraph(left, right).ToGraph();
  return VerifyScheme(g, trace.scheme);
}

KeyRelation SampleLeft() { return KeyRelation("R", {3, 1, 2, 1, 5, 2}); }
KeyRelation SampleRight() { return KeyRelation("S", {2, 1, 1, 4, 2, 1}); }

TEST(SortMergeExecutorTest, EmitsAllResults) {
  const ExecutionTrace trace =
      SortMergeJoinExecute(SampleLeft(), SampleRight());
  ExpectCompleteResults(SampleLeft(), SampleRight(), trace);
}

TEST(SortMergeExecutorTest, TraceIsAPerfectScheme) {
  // The executable content of Theorems 3.2/4.1: the merge's boustrophedon
  // block order is the Lemma 3.2 perfect schedule.
  const ExecutionTrace trace =
      SortMergeJoinExecute(SampleLeft(), SampleRight());
  const VerificationResult verdict =
      VerifyTrace(SampleLeft(), SampleRight(), trace);
  ASSERT_TRUE(verdict.valid) << verdict.error;
  const Graph g = BuildEquiJoinGraph(SampleLeft(), SampleRight()).ToGraph();
  EXPECT_EQ(verdict.effective_cost, g.num_edges());  // π = m
}

TEST(SortMergeExecutorTest, PerfectOnRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 20;
    options.max_left_dup = 4;
    options.max_right_dup = 4;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const ExecutionTrace trace = SortMergeJoinExecute(w.left, w.right);
    const VerificationResult verdict = VerifyTrace(w.left, w.right, trace);
    ASSERT_TRUE(verdict.valid) << verdict.error;
    EXPECT_EQ(verdict.effective_cost,
              static_cast<int64_t>(trace.results.size()))
        << seed;
  }
}

TEST(SortMergeExecutorTest, EmptyJoin) {
  KeyRelation r("R", {1});
  KeyRelation s("S", {2});
  const ExecutionTrace trace = SortMergeJoinExecute(r, s);
  EXPECT_TRUE(trace.results.empty());
  EXPECT_TRUE(trace.scheme.configs.empty());
}

TEST(HashJoinExecutorTest, EmitsAllResultsValidScheme) {
  const ExecutionTrace trace = HashJoinExecute(SampleLeft(), SampleRight());
  ExpectCompleteResults(SampleLeft(), SampleRight(), trace);
  const VerificationResult verdict =
      VerifyTrace(SampleLeft(), SampleRight(), trace);
  ASSERT_TRUE(verdict.valid) << verdict.error;
}

TEST(HashJoinExecutorTest, AtLeastSortMergeCost) {
  // Hash probing is valid but generally not perfect: each probe-row switch
  // can be a jump. Sort-merge's trace is never beaten.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 15;
    options.max_left_dup = 3;
    options.max_right_dup = 3;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const VerificationResult hash =
        VerifyTrace(w.left, w.right, HashJoinExecute(w.left, w.right));
    const VerificationResult merge = VerifyTrace(
        w.left, w.right, SortMergeJoinExecute(w.left, w.right));
    ASSERT_TRUE(hash.valid && merge.valid);
    EXPECT_GE(hash.effective_cost, merge.effective_cost) << seed;
  }
}

TEST(BlockNestedLoopExecutorTest, EmitsAllResultsValidScheme) {
  for (int block_size : {1, 2, 4, 100}) {
    const ExecutionTrace trace =
        BlockNestedLoopExecute(SampleLeft(), SampleRight(), block_size);
    ExpectCompleteResults(SampleLeft(), SampleRight(), trace);
    const VerificationResult verdict =
        VerifyTrace(SampleLeft(), SampleRight(), trace);
    ASSERT_TRUE(verdict.valid) << verdict.error << " b=" << block_size;
  }
}

TEST(BlockNestedLoopExecutorTest, ComparisonCountIsQuadratic) {
  KeyRelation r("R", std::vector<int64_t>(10, 1));
  KeyRelation s("S", std::vector<int64_t>(10, 2));
  const ExecutionTrace trace = BlockNestedLoopExecute(r, s, 2);
  EXPECT_EQ(trace.comparisons, 100);  // full cross product examined
}

TEST(ExecutorComparisonTest, CostOrderingOnSkewedWorkload) {
  // Sort-merge dominates both alternatives in pebbling cost (hash vs BNL
  // is workload-dependent: BNL's block reuse can beat hash's per-probe
  // bucket hops).
  KeyRelation r("R", {1, 1, 1, 1, 2, 2, 3, 3, 3});
  KeyRelation s("S", {1, 1, 2, 2, 2, 3, 3, 9});
  const VerificationResult merge =
      VerifyTrace(r, s, SortMergeJoinExecute(r, s));
  const VerificationResult hash = VerifyTrace(r, s, HashJoinExecute(r, s));
  const VerificationResult bnl =
      VerifyTrace(r, s, BlockNestedLoopExecute(r, s, 3));
  ASSERT_TRUE(merge.valid && hash.valid && bnl.valid);
  EXPECT_LE(merge.effective_cost, hash.effective_cost);
  EXPECT_LE(merge.effective_cost, bnl.effective_cost);
  EXPECT_EQ(merge.effective_cost,
            BuildEquiJoinGraph(r, s).num_edges());  // perfect
}

}  // namespace
}  // namespace pebblejoin
