#include "io/graph_io.h"

#include "io/dot_export.h"

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(BipartiteIoTest, RoundTripsRandomGraphs) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const BipartiteGraph g = RandomBipartite(7, 9, 0.3, seed);
    std::string error;
    const auto parsed = ParseBipartiteGraph(SerializeBipartiteGraph(g),
                                            &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(parsed->SameEdgeSet(g));
    EXPECT_EQ(parsed->left_size(), g.left_size());
    EXPECT_EQ(parsed->right_size(), g.right_size());
  }
}

TEST(BipartiteIoTest, RoundTripsEmptyGraph) {
  const BipartiteGraph g(3, 0);
  std::string error;
  const auto parsed = ParseBipartiteGraph(SerializeBipartiteGraph(g),
                                          &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->left_size(), 3);
  EXPECT_EQ(parsed->num_edges(), 0);
}

TEST(BipartiteIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "bipartite 2 2 1  # trailing comment\n"
      "\n"
      "0 1\n";
  std::string error;
  const auto parsed = ParseBipartiteGraph(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->HasEdge(0, 1));
}

TEST(BipartiteIoTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseBipartiteGraph("", &error).has_value());
  EXPECT_FALSE(ParseBipartiteGraph("graph 2 1\n0 1\n", &error).has_value());
  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite 2 2 2\n0 1\n", &error).has_value());
  EXPECT_NE(error.find("length"), std::string::npos);
  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite 2 2 1\n0 5\n", &error).has_value());
  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite 2 2 1\n0 x\n", &error).has_value());
  EXPECT_FALSE(ParseBipartiteGraph("bipartite 2 2 2\n0 1\n0 1\n", &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite -1 2 0\n", &error).has_value());
}

TEST(BipartiteIoTest, MalformedInputCorpus) {
  // Every entry must be rejected with a non-empty diagnostic, never an
  // abort: this input arrives from untrusted files and stdin.
  const char* corpus[] = {
      "",                                     // empty
      "bipartite",                            // header cut off
      "bipartite 2 2",                        // missing edge count
      "bipartite 2 2 x",                      // non-numeric count
      "bipartite 2 2 1\n0\n",                 // dangling edge token
      "bipartite 2 2 1\n0 1 7\n",             // trailing junk token
      "bipartite 2 2 99999999999999\n0 1\n",  // count overflows int
      "bipartite 2 2 2147483647\n0 1\n",      // token math would wrap int32
      "bipartite 2000000000 2000000000 0\n",  // absurd allocation request
      "bipartite 2 2 1\n-1 0\n",              // negative endpoint
      "bipartite 2 2 1\n1e1 0\n",             // float-ish token
      "bipartite 2 2 1\n0x1 0\n",             // hex not accepted
      "bipartite 2 2 2\n0 0\n0 0\n",          // duplicate edge
      "graph 2 1\n0 1\n",                     // wrong header keyword
  };
  for (const char* text : corpus) {
    std::string error;
    EXPECT_FALSE(ParseBipartiteGraph(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(BipartiteIoTest, ErrorsNameTheOffendingLine) {
  std::string error;
  EXPECT_FALSE(ParseBipartiteGraph("bipartite 2 2 2\n0 0\n# comment\n0 0\n",
                                   &error)
                   .has_value());
  // The duplicate is on input line 4 (header, edge, comment, edge).
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite 2 2 1\n\n\n0 9\n", &error).has_value());
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(BipartiteIoTest, LengthMismatchReportsBothCounts) {
  std::string error;
  EXPECT_FALSE(
      ParseBipartiteGraph("bipartite 3 3 4\n0 1\n1 2\n", &error).has_value());
  EXPECT_NE(error.find("length"), std::string::npos) << error;
  EXPECT_NE(error.find("2 edge tokens"), std::string::npos) << error;
  EXPECT_NE(error.find("4 declared"), std::string::npos) << error;
}

TEST(GraphIoTest, MalformedInputCorpus) {
  const char* corpus[] = {
      "",
      "graph",
      "graph 3",
      "graph 3 zzz",
      "graph 3 1\n0\n",
      "graph 3 1\n0 1 2\n",
      "graph 3 2147483647\n0 1\n",
      "graph 2000000000 0\n",
      "graph 3 1\n0 0\n",   // self loop
      "graph 3 2\n0 1\n0 1\n",  // duplicate
      "bipartite 2 2 0\n",  // wrong header keyword
  };
  for (const char* text : corpus) {
    std::string error;
    EXPECT_FALSE(ParseGraph(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(GraphIoTest, RoundTripsRandomGraphs) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = RandomGraph(10, 0.3, seed);
    std::string error;
    const auto parsed = ParseGraph(SerializeGraph(g), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->num_edges(), g.num_edges());
    for (int e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(parsed->edge(e).u, g.edge(e).u);
      EXPECT_EQ(parsed->edge(e).v, g.edge(e).v);
    }
  }
}

TEST(GraphIoTest, RejectsSelfLoopsAndRange) {
  std::string error;
  EXPECT_FALSE(ParseGraph("graph 3 1\n1 1\n", &error).has_value());
  EXPECT_FALSE(ParseGraph("graph 3 1\n0 3\n", &error).has_value());
}

TEST(FileIoTest, WriteThenRead) {
  const std::string path = testing::TempDir() + "/pebblejoin_io_test.txt";
  const BipartiteGraph g = WorstCaseFamily(4);
  ASSERT_TRUE(WriteTextFile(path, SerializeBipartiteGraph(g)));
  std::string error;
  const auto parsed = ReadBipartiteGraphFile(path, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->SameEdgeSet(g));
}

TEST(FileIoTest, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(
      ReadBipartiteGraphFile("/nonexistent/nope.txt", &error).has_value());
  EXPECT_FALSE(ReadTextFile("/nonexistent/nope.txt").has_value());
}

TEST(DotExportTest, ContainsAllVerticesAndEdges) {
  const BipartiteGraph g = WorstCaseFamily(3);
  const std::string dot = ExportDot(g);
  EXPECT_NE(dot.find("graph join_graph {"), std::string::npos);
  for (int l = 0; l < g.left_size(); ++l) {
    EXPECT_NE(dot.find(std::string("L") + std::to_string(l) + " [shape=box]"),
              std::string::npos);
  }
  for (const BipartiteGraph::Edge& e : g.edges()) {
    EXPECT_NE(dot.find(std::string("L") + std::to_string(e.left) + " -- R" +
                       std::to_string(e.right)),
              std::string::npos);
  }
}

TEST(DotExportTest, OrderAnnotationsAndJumps) {
  const BipartiteGraph g = MatchingGraph(2);  // any order has one jump
  DotOptions options;
  options.edge_order = std::vector<int>{1, 0};
  const std::string dot = ExportDot(g, options);
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExportDeathTest, RejectsBadOrders) {
  const BipartiteGraph g = MatchingGraph(2);
  DotOptions options;
  options.edge_order = std::vector<int>{0};
  EXPECT_DEATH(ExportDot(g, options), "mismatch");
  options.edge_order = std::vector<int>{0, 0};
  EXPECT_DEATH(ExportDot(g, options), "repeats");
}

}  // namespace
}  // namespace pebblejoin
