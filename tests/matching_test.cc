#include "tsp/blossom_matching.h"

#include <algorithm>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tsp/held_karp.h"
#include "tsp/matching_path_cover.h"

namespace pebblejoin {
namespace {

// Maximum matching size by brute force over edge subsets (small graphs).
int BruteForceMatchingSize(const Graph& g) {
  const int m = g.num_edges();
  int best = 0;
  for (int mask = 0; mask < (1 << m); ++mask) {
    std::vector<bool> used(g.num_vertices(), false);
    int size = 0;
    bool ok = true;
    for (int e = 0; e < m && ok; ++e) {
      if (!((mask >> e) & 1)) continue;
      const Graph::Edge& edge = g.edge(e);
      if (used[edge.u] || used[edge.v]) {
        ok = false;
      } else {
        used[edge.u] = used[edge.v] = true;
        ++size;
      }
    }
    if (ok) best = std::max(best, size);
  }
  return best;
}

TEST(BlossomTest, EmptyAndSingleEdge) {
  EXPECT_EQ(MaximumMatching(Graph(3)).size, 0);
  Graph g(2);
  g.AddEdge(0, 1);
  const Matching m = MaximumMatching(g);
  EXPECT_EQ(m.size, 1);
  EXPECT_EQ(m.match[0], 1);
  EXPECT_EQ(m.match[1], 0);
}

TEST(BlossomTest, PathGraph) {
  // A path on 2k+1 edges has a matching of size k+1... precisely
  // ⌈edges/2⌉ for paths: P with m edges, matching = ⌈m/2⌉.
  for (int m = 1; m <= 9; ++m) {
    const Graph g = PathGraph(m).ToGraph();
    EXPECT_EQ(MaximumMatching(g).size, (m + 1) / 2) << m;
  }
}

TEST(BlossomTest, OddCycleNeedsBlossoms) {
  // C_{2k+1} has maximum matching k; greedy-augmenting without blossom
  // handling gets this wrong, so this exercises the contraction path.
  for (int n : {3, 5, 7, 9, 11}) {
    EXPECT_EQ(MaximumMatching(CycleGraph(n)).size, n / 2) << n;
  }
}

TEST(BlossomTest, CompleteGraph) {
  for (int n = 2; n <= 9; ++n) {
    EXPECT_EQ(MaximumMatching(CompleteGraph(n)).size, n / 2) << n;
  }
}

TEST(BlossomTest, PetersenLikeBlossomNest) {
  // Two triangles joined by a path: forces nested blossom handling.
  Graph g(8);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);   // triangle A
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);   // bridge path
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  g.AddEdge(7, 5);   // triangle B
  EXPECT_EQ(MaximumMatching(g).size, BruteForceMatchingSize(g));
}

TEST(BlossomTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const Graph g = RandomGraph(9, 0.3, seed);
    const Matching m = MaximumMatching(g);
    EXPECT_TRUE(IsValidMatching(g, m));
    EXPECT_EQ(m.size, BruteForceMatchingSize(g)) << g.DebugString();
  }
}

TEST(BlossomTest, MatchesBruteForceOnDenseRandomGraphs) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = RandomGraph(8, 0.6, seed);
    EXPECT_EQ(MaximumMatching(g).size, BruteForceMatchingSize(g))
        << g.DebugString();
  }
}

TEST(IsValidMatchingTest, RejectsBadMatchings) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  Matching m;
  m.match = {1, 0, 3, 2};
  m.size = 2;
  EXPECT_TRUE(IsValidMatching(g, m));
  m.match = {1, 0, 3, 2};
  m.size = 1;  // wrong count
  EXPECT_FALSE(IsValidMatching(g, m));
  m.match = {2, -1, 0, -1};  // not an edge
  m.size = 1;
  EXPECT_FALSE(IsValidMatching(g, m));
  m.match = {1, 0, 3, -1};  // asymmetric
  m.size = 2;
  EXPECT_FALSE(IsValidMatching(g, m));
}

// --- Matching-seeded path cover ---------------------------------------------

TEST(MatchingPathCoverTest, ValidToursOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Tsp12Instance inst(RandomGraph(14, 0.25, seed));
    const Tour tour = MatchingPathCoverTour(inst, seed);
    EXPECT_TRUE(IsValidTour(inst, tour));
  }
}

TEST(MatchingPathCoverTest, JumpUpperBoundFromMatching) {
  // J_ours <= n − 1 − |M*| by construction.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Tsp12Instance inst(RandomGraph(13, 0.3, seed));
    const Matching matching = MaximumMatching(inst.good());
    const Tour tour = MatchingPathCoverTour(inst, seed);
    EXPECT_LE(TourJumps(inst, tour),
              inst.num_nodes() - 1 - matching.size)
        << seed;
  }
}

TEST(MatchingPathCoverTest, LowerBoundIsAdmissible) {
  // J_opt >= n − 1 − 2|M*|: verified against Held–Karp.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Tsp12Instance inst(RandomGraph(11, 0.25, seed));
    const Matching matching = MaximumMatching(inst.good());
    const auto exact = HeldKarpSolve(inst);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(exact->jumps, MatchingJumpLowerBound(inst, matching)) << seed;
  }
}

TEST(MatchingPathCoverTest, WithinThreeHalvesOfOptimal) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const Tsp12Instance inst(RandomGraph(12, 0.2, seed));
    if (inst.num_nodes() < 2) continue;
    const Tour tour = MatchingPathCoverTour(inst, seed);
    const auto exact = HeldKarpSolve(inst);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(2 * TourCost(inst, tour), 3 * exact->cost) << seed;
  }
}

TEST(MatchingPathCoverTest, PerfectWhenGoodGraphHasHamPath) {
  Graph good(8);
  for (int i = 0; i + 1 < 8; ++i) good.AddEdge(i, i + 1);
  const Tsp12Instance inst(good);
  // The matching covers alternate edges; linking restores the path.
  EXPECT_EQ(TourJumps(inst, MatchingPathCoverTour(inst, 3)), 0);
}

TEST(MatchingPathCoverTest, NoGoodEdgesAtAll) {
  const Tsp12Instance inst(Graph(5));
  const Tour tour = MatchingPathCoverTour(inst, 1);
  EXPECT_TRUE(IsValidTour(inst, tour));
  EXPECT_EQ(TourJumps(inst, tour), 4);
}

}  // namespace
}  // namespace pebblejoin
