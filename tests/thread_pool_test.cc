// ThreadPool contract tests: bounded-queue backpressure, deterministic
// exception propagation, worker-id tagging, and graceful shutdown. The
// stress cases double as ThreadSanitizer fodder (ctest -L tsan).

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pebblejoin {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Drain();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Drain(): the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool pool(8);
  pool.ParallelFor(kN, [&hits](int i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesToCallerOwnedSlots) {
  // The deterministic-merge pattern: each index owns a slot, no locks.
  constexpr int kN = 256;
  std::vector<long> squares(kN, -1);
  ThreadPool pool(4);
  pool.ParallelFor(kN, [&squares](int i) {
    squares[i] = static_cast<long>(i) * i;
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(squares[i], static_cast<long>(i) * i);
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexFailure) {
  ThreadPool pool(4);
  // Several indices throw; the pool must pick index 3's message every run,
  // regardless of which worker hit its exception first.
  try {
    pool.ParallelFor(64, [](int i) {
      if (i == 3 || i == 17 || i == 40) {
        throw std::runtime_error(std::string("boom at ") + std::to_string(i));
      }
    });
    FAIL() << "ParallelFor swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
}

TEST(ThreadPoolTest, ParallelForRecoversAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(8, [](int i) {
        if (i == 0) throw std::runtime_error("first batch");
      }),
      std::runtime_error);
  // The pool stays usable: a later batch runs cleanly.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&count](int) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, DrainRethrowsFirstSubmittedError) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("submitted boom"); });
  EXPECT_THROW(pool.Drain(), std::runtime_error);
  // The error is consumed: a second Drain is clean.
  pool.Drain();
}

TEST(ThreadPoolTest, BoundedQueueBackpressure) {
  // Capacity 2 with a blocked worker: Submit must block rather than buffer
  // unboundedly, and everything still completes once the worker is released.
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  {
    ThreadPool pool(1, /*queue_capacity=*/2);
    pool.Submit([&] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
    // These fill the queue; the submitting thread may block on the last
    // ones until the gate opens, which is the point.
    std::thread producer([&] {
      for (int i = 0; i < 8; ++i) {
        pool.Submit([&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_LT(done.load(), 9);  // gate still closed: nothing finished
    release.store(true, std::memory_order_release);
    producer.join();
    pool.Drain();
  }
  EXPECT_EQ(done.load(), 9);
}

TEST(ThreadPoolTest, CurrentWorkerIdIsDenseOnPoolAndMinusOneOff) {
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::vector<std::atomic<int>> seen(kThreads);
  pool.ParallelFor(256, [&](int) {
    const int id = ThreadPool::CurrentWorkerId();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, kThreads);
    seen[id].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (int i = 0; i < kThreads; ++i) total += seen[i].load();
  EXPECT_EQ(total, 256);
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);  // owner thread is off-pool
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ConcurrentStress) {
  // Many small tasks hammering shared atomics from several pool widths;
  // primarily a TSan target.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads, /*queue_capacity=*/16);
    std::atomic<long> sum{0};
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    }
    pool.Drain();
    EXPECT_EQ(sum.load(), 500L * 499 / 2) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pebblejoin
