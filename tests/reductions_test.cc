#include <algorithm>

#include "graph/components.h"
#include "graph/generators.h"
#include "graph/graph_properties.h"
#include "graph/line_graph.h"
#include "graph/hamiltonian.h"
#include "gtest/gtest.h"
#include "pebble/cost_model.h"
#include "pebble/scheme_verifier.h"
#include "reductions/diamond_gadget.h"
#include "reductions/l_reduction.h"
#include "reductions/tsp3_to_pebble.h"
#include "reductions/tsp4_to_tsp3.h"
#include "solver/exact_pebbler.h"
#include "tsp/branch_and_bound.h"
#include "tsp/held_karp.h"
#include "util/random.h"

namespace pebblejoin {
namespace {

// Exact minimum jumps of a TSP-(1,2) instance (Held–Karp or B&B).
int64_t ExactJumps(const Tsp12Instance& instance) {
  if (instance.num_nodes() <= kMaxHeldKarpNodes) {
    return HeldKarpSolve(instance)->jumps;
  }
  const BranchAndBoundResult r =
      BranchAndBoundSolve(instance, BranchAndBoundOptions{});
  EXPECT_TRUE(r.proven_optimal);
  return r.best.jumps;
}

int64_t ExactCost(const Tsp12Instance& instance) {
  return instance.num_nodes() - 1 + ExactJumps(instance);
}

// --- Diamond gadget -------------------------------------------------------

TEST(DiamondGadgetTest, DegreeBounds) {
  const DiamondGadget& d = DiamondGadget::Instance();
  for (int v = 0; v < DiamondGadget::kNumNodes; ++v) {
    if (DiamondGadget::IsCorner(v)) {
      EXPECT_EQ(d.graph().Degree(v), 2) << v;  // +1 external edge => 3
    } else {
      EXPECT_LE(d.graph().Degree(v), 3) << v;
    }
  }
}

TEST(DiamondGadgetTest, AllCornerPairsHamiltonianConnected) {
  const DiamondGadget& d = DiamondGadget::Instance();
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      const std::vector<int>& path = d.CornerPath(a, b);
      ASSERT_EQ(path.size(), static_cast<size_t>(DiamondGadget::kNumNodes));
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      std::vector<bool> seen(DiamondGadget::kNumNodes, false);
      for (int v : path) {
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
      }
      for (size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(d.graph().HasEdge(path[i - 1], path[i]))
            << a << "->" << b;
      }
    }
  }
}

TEST(DiamondGadgetTest, NoTwoCornerPathsCoverAllNodes) {
  // Property (c): exhaustively check every split of the corners into two
  // pairs and every vertex bipartition.
  const Graph& g = DiamondGadget::Instance().graph();
  const int n = DiamondGadget::kNumNodes;
  const int pairings[3][4] = {{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 3, 1, 2}};
  for (const auto& p : pairings) {
    for (int mask = 0; mask < (1 << n); ++mask) {
      if (!(mask & (1 << p[0])) || !(mask & (1 << p[1]))) continue;
      if ((mask & (1 << p[2])) || (mask & (1 << p[3]))) continue;
      std::vector<int> a_nodes, b_nodes;
      for (int v = 0; v < n; ++v) {
        ((mask >> v) & 1) ? a_nodes.push_back(v) : b_nodes.push_back(v);
      }
      if (a_nodes.size() < 2 || b_nodes.size() < 2) continue;
      auto has_corner_path = [&](const std::vector<int>& nodes, int s,
                                 int e) {
        std::vector<int> local(n, -1);
        for (size_t i = 0; i < nodes.size(); ++i) {
          local[nodes[i]] = static_cast<int>(i);
        }
        Graph sub(static_cast<int>(nodes.size()));
        for (int eid = 0; eid < g.num_edges(); ++eid) {
          const Graph::Edge& edge = g.edge(eid);
          if (local[edge.u] != -1 && local[edge.v] != -1) {
            sub.AddEdge(local[edge.u], local[edge.v]);
          }
        }
        return FindHamiltonianPathBetween(sub, local[s], local[e])
            .has_value();
      };
      EXPECT_FALSE(has_corner_path(a_nodes, p[0], p[1]) &&
                   has_corner_path(b_nodes, p[2], p[3]))
          << "two perfect segments cover the gadget";
    }
  }
}

TEST(DiamondGadgetTest, Connected) {
  EXPECT_TRUE(IsConnectedIgnoringIsolated(DiamondGadget::Instance().graph()));
}

// --- TSP-4(1,2) -> TSP-3(1,2) ----------------------------------------------

TEST(Tsp4ToTsp3Test, OutputHasMaxGoodDegreeThree) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(8, 4, 5, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    EXPECT_LE(reduction.h().MaxGoodDegree(), 3) << seed;
  }
}

TEST(Tsp4ToTsp3Test, SizeBlowupBounded) {
  // |V(H)| <= 9·|V(G)| with the 9-node gadget (paper: 11).
  const Tsp12Instance g(RandomConnectedBoundedDegree(10, 4, 8, 3));
  const Tsp4ToTsp3Reduction reduction(g);
  EXPECT_LE(reduction.h().num_nodes(), 9 * g.num_nodes());
}

TEST(Tsp4ToTsp3Test, KeepsLowDegreeNodes) {
  const Tsp12Instance g(CycleGraph(6));  // all degrees 2
  const Tsp4ToTsp3Reduction reduction(g);
  EXPECT_EQ(reduction.h().num_nodes(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_FALSE(reduction.IsDiamond(v));
}

TEST(Tsp4ToTsp3Test, LiftedTourValidAndNoExtraJumps) {
  Rng rng(99);
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(9, 4, 6, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    // Random tour and the exact tour both lift with no extra jumps.
    Tour random_tour = rng.Permutation(g.num_nodes());
    for (const Tour& tour :
         {random_tour, HeldKarpSolve(g)->tour}) {
      const Tour lifted = reduction.LiftTour(tour);
      EXPECT_TRUE(IsValidTour(reduction.h(), lifted));
      EXPECT_LE(TourJumps(reduction.h(), lifted), TourJumps(g, tour))
          << seed;
    }
  }
}

TEST(Tsp4ToTsp3Test, Property1HoldsWithAlpha9) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(6, 4, 5, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = ExactCost(reduction.h());
    EXPECT_TRUE(SatisfiesProperty1(sample, 9.0))
        << seed << " " << DebugString(sample);
  }
}

TEST(Tsp4ToTsp3Test, MapTourBackValid) {
  Rng rng(5);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(7, 4, 5, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    for (int trial = 0; trial < 5; ++trial) {
      const Tour h_tour = rng.Permutation(reduction.h().num_nodes());
      const Tour g_tour = reduction.MapTourBack(h_tour);
      EXPECT_TRUE(IsValidTour(g, g_tour));
    }
  }
}

TEST(Tsp4ToTsp3Test, Property2HoldsOnLiftedAndPerturbedTours) {
  // β = 1 check: cost(g(s)) − OPT(G) <= cost(s) − OPT(H), evaluated on
  // solutions s obtained by lifting tours of G (the solutions the
  // reduction argument manipulates).
  Rng rng(13);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(6, 4, 4, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = ExactCost(reduction.h());
    for (int trial = 0; trial < 8; ++trial) {
      const Tour s = reduction.LiftTour(rng.Permutation(g.num_nodes()));
      sample.cost_s = TourCost(reduction.h(), s);
      sample.cost_gs = TourCost(g, reduction.MapTourBack(s));
      EXPECT_TRUE(SatisfiesProperty2(sample, 1.0))
          << seed << " " << DebugString(sample);
    }
  }
}

TEST(Tsp4ToTsp3Test, NiceTourPreservesValidity) {
  Rng rng(31);
  const Tsp12Instance g(RandomConnectedBoundedDegree(6, 4, 5, 17));
  const Tsp4ToTsp3Reduction reduction(g);
  for (int trial = 0; trial < 10; ++trial) {
    const Tour h_tour = rng.Permutation(reduction.h().num_nodes());
    const Tour nice = reduction.NormalizeToNiceTour(h_tour);
    EXPECT_TRUE(IsValidTour(reduction.h(), nice));
    // Every diamond is contiguous in the nice tour.
    for (int u = 0; u < g.num_nodes(); ++u) {
      if (!reduction.IsDiamond(u)) continue;
      int first = -1;
      int last = -1;
      for (int i = 0; i < static_cast<int>(nice.size()); ++i) {
        if (reduction.OwnerOf(nice[i]) == u) {
          if (first == -1) first = i;
          last = i;
        }
      }
      EXPECT_EQ(last - first + 1, DiamondGadget::kNumNodes);
    }
  }
}

TEST(Tsp4ToTsp3DeathTest, RejectsDegreeFiveInputs) {
  const Tsp12Instance g(StarGraph(5).ToGraph());  // center degree 5
  EXPECT_DEATH(Tsp4ToTsp3Reduction{g}, "TSP-4");
}

TEST(Tsp4ToTsp3Test, Property2HoldsOnArbitraryTours) {
  // Definition 4.2 quantifies over EVERY feasible solution of f(x); this
  // samples uniformly random tours of H, not just lifted ones, exercising
  // the niceness surgery on maximally scrambled inputs.
  Rng rng(77);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(5, 4, 4, seed));
    const Tsp4ToTsp3Reduction reduction(g);
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = ExactCost(reduction.h());
    for (int trial = 0; trial < 15; ++trial) {
      const Tour h_tour = rng.Permutation(reduction.h().num_nodes());
      sample.cost_s = TourCost(reduction.h(), h_tour);
      sample.cost_gs = TourCost(g, reduction.MapTourBack(h_tour));
      EXPECT_TRUE(SatisfiesProperty2(sample, 1.0))
          << seed << " " << DebugString(sample);
    }
  }
}

// --- TSP-3(1,2) -> PEBBLE ---------------------------------------------------

TEST(Tsp3ToPebbleTest, IncidenceStructure) {
  const Tsp12Instance g(CycleGraph(5));
  const Tsp3ToPebbleReduction reduction(g);
  EXPECT_EQ(reduction.b().left_size(), 5);
  EXPECT_EQ(reduction.b().right_size(), 5);
  EXPECT_EQ(reduction.b().num_edges(), 10);
  for (int b_edge = 0; b_edge < 10; ++b_edge) {
    const int v = reduction.IncidenceVertex(b_edge);
    const int e = reduction.IncidenceEdge(b_edge);
    const Graph::Edge& ge = g.good().edge(e);
    EXPECT_TRUE(v == ge.u || v == ge.v);
  }
}

TEST(Tsp3ToPebbleTest, LiftedPebblingIsValid) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(8, 3, 4, seed));
    const Tsp3ToPebbleReduction reduction(g);
    const Tour tour = HeldKarpSolve(g)->tour;
    const std::vector<int> order = reduction.LiftTourToEdgeOrder(tour);
    EXPECT_TRUE(VerifyEdgeOrder(reduction.pebble_graph(), order).valid)
        << seed;
  }
}

TEST(Tsp3ToPebbleTest, Property1HoldsWithAlpha3) {
  const ExactPebbler exact;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(7, 3, 3, seed));
    const Tsp3ToPebbleReduction reduction(g);
    const auto pebble_opt =
        exact.OptimalEffectiveCost(reduction.pebble_graph());
    ASSERT_TRUE(pebble_opt.has_value());
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    // π(B) − 1 is the L(B)-tour cost (Proposition 2.2); that is the cost
    // the L-reduction compares (π(B) itself can hit 3.2·OPT on cycles).
    sample.opt_fx = *pebble_opt - 1;
    EXPECT_TRUE(SatisfiesProperty1(sample, 3.0))
        << seed << " " << DebugString(sample);
  }
}

TEST(Tsp3ToPebbleTest, LiftedCostTracksTourCost) {
  // The lift's effective pebbling cost is at most 2m/... concretely: at
  // most cost(T) + m + 1 where m = |E(G)| (each vertex block adds its
  // incidences with clique steps; each good step crosses for free).
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(8, 3, 4, seed));
    const Tsp3ToPebbleReduction reduction(g);
    const auto hk = HeldKarpSolve(g);
    const std::vector<int> order = reduction.LiftTourToEdgeOrder(hk->tour);
    const Graph& pebble_graph = reduction.pebble_graph();
    const int64_t effective = static_cast<int64_t>(order.size()) +
                              JumpsOfEdgeOrder(pebble_graph, order);
    EXPECT_LE(effective, 3 * hk->cost + 3) << seed;
  }
}

TEST(Tsp3ToPebbleTest, MapEdgeOrderBackValidAndProperty2) {
  Rng rng(8);
  const ExactPebbler exact;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(6, 3, 3, seed));
    const Tsp3ToPebbleReduction reduction(g);
    const auto pebble_opt =
        exact.OptimalEffectiveCost(reduction.pebble_graph());
    ASSERT_TRUE(pebble_opt.has_value());
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = *pebble_opt - 1;
    for (int trial = 0; trial < 6; ++trial) {
      // Feasible pebblings: lifted tours (the reduction's own solutions).
      const Tour g_tour = rng.Permutation(g.num_nodes());
      const std::vector<int> s = reduction.LiftTourToEdgeOrder(g_tour);
      const Graph& pb = reduction.pebble_graph();
      sample.cost_s =
          static_cast<int64_t>(s.size()) + JumpsOfEdgeOrder(pb, s) - 1;
      const Tour mapped = reduction.MapEdgeOrderBack(s);
      EXPECT_TRUE(IsValidTour(g, mapped));
      sample.cost_gs = TourCost(g, mapped);
      EXPECT_TRUE(SatisfiesProperty2(sample, 1.0))
          << seed << " " << DebugString(sample);
    }
  }
}

TEST(Tsp3ToPebbleTest, Property2HoldsOnArbitraryEdgeOrders) {
  // Same quantification check for the second reduction: uniformly random
  // pebblings of B (arbitrary edge permutations).
  Rng rng(78);
  const ExactPebbler exact;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Tsp12Instance g(RandomConnectedBoundedDegree(6, 3, 3, seed));
    const Tsp3ToPebbleReduction reduction(g);
    const auto pebble_opt =
        exact.OptimalEffectiveCost(reduction.pebble_graph());
    ASSERT_TRUE(pebble_opt.has_value());
    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = *pebble_opt - 1;
    for (int trial = 0; trial < 15; ++trial) {
      const std::vector<int> order =
          rng.Permutation(reduction.b().num_edges());
      sample.cost_s =
          static_cast<int64_t>(order.size()) +
          JumpsOfEdgeOrder(reduction.pebble_graph(), order) - 1;
      sample.cost_gs = TourCost(g, reduction.MapEdgeOrderBack(order));
      EXPECT_TRUE(SatisfiesProperty2(sample, 1.0))
          << seed << " " << DebugString(sample);
    }
  }
}

// --- Propositions 2.1 / 2.2 (the pebbling <-> TSP bridge) -------------------

TEST(PebbleTspBridgeTest, PerfectPebblingIffLineGraphHamPath) {
  // Proposition 2.1, exhaustively validated on random small graphs.
  const ExactPebbler exact;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const BipartiteGraph bg = RandomConnectedBipartite(3, 4, 8, seed);
    const Graph g = bg.ToGraph();
    const Graph line = BuildLineGraph(g);
    const auto cost = exact.OptimalEffectiveCost(g);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost == g.num_edges(), HasHamiltonianPath(line)) << seed;
  }
}

TEST(PebbleTspBridgeTest, OptimalTourCostIsPiMinusOne) {
  // Proposition 2.2.
  const ExactPebbler exact;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const Graph g = RandomConnectedBipartite(4, 4, 9, seed).ToGraph();
    const Graph line = BuildLineGraph(g);
    const Tsp12Instance line_instance(line);
    const auto cost = exact.OptimalEffectiveCost(g);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(ExactCost(line_instance), *cost - 1) << seed;
  }
}

}  // namespace
}  // namespace pebblejoin
