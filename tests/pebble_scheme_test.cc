#include "pebble/pebbling_scheme.h"

#include "graph/generators.h"
#include "pebble/cost_model.h"
#include "pebble/scheme_verifier.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(PebbleConfigTest, MovesToCountsPebbleMoves) {
  const PebbleConfig a{1, 2};
  EXPECT_EQ(a.MovesTo(PebbleConfig{1, 2}), 0);
  EXPECT_EQ(a.MovesTo(PebbleConfig{2, 1}), 0);  // unordered
  EXPECT_EQ(a.MovesTo(PebbleConfig{1, 3}), 1);
  EXPECT_EQ(a.MovesTo(PebbleConfig{3, 2}), 1);
  EXPECT_EQ(a.MovesTo(PebbleConfig{3, 4}), 2);
}

TEST(PebbleConfigTest, Covers) {
  const PebbleConfig c{3, 5};
  EXPECT_TRUE(c.Covers(3, 5));
  EXPECT_TRUE(c.Covers(5, 3));
  EXPECT_FALSE(c.Covers(3, 4));
}

TEST(HatCostTest, EmptySchemeCostsNothing) {
  EXPECT_EQ(HatCost(PebblingScheme{}), 0);
}

TEST(HatCostTest, SingleConfigCostsTwo) {
  PebblingScheme s;
  s.configs = {{0, 1}};
  EXPECT_EQ(HatCost(s), 2);
}

TEST(HatCostTest, AdjacentStepsCostOne) {
  // (0,1) -> (1,2) -> (2,3): 2 (placement) + 1 + 1.
  PebblingScheme s;
  s.configs = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(HatCost(s), 4);
}

TEST(HatCostTest, JumpCostsTwo) {
  PebblingScheme s;
  s.configs = {{0, 1}, {2, 3}};
  EXPECT_EQ(HatCost(s), 4);
}

TEST(SchemeFromEdgeOrderTest, ConfigsAreEdgeEndpoints) {
  const Graph g = PathGraph(3).ToGraph();
  const PebblingScheme s = SchemeFromEdgeOrder(g, {2, 0, 1});
  ASSERT_EQ(s.configs.size(), 3u);
  EXPECT_TRUE(s.configs[0].Covers(g.edge(2).u, g.edge(2).v));
  EXPECT_TRUE(s.configs[1].Covers(g.edge(0).u, g.edge(0).v));
}

TEST(EdgeOrderCostTest, MatchesSchemeCost) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = RandomConnectedBipartite(5, 5, 14, seed).ToGraph();
    std::vector<int> order(g.num_edges());
    for (int i = 0; i < g.num_edges(); ++i) order[i] = i;
    EXPECT_EQ(HatCostOfEdgeOrder(g, order),
              HatCost(SchemeFromEdgeOrder(g, order)));
  }
}

TEST(EdgeOrderCostTest, JumpCounting) {
  const Graph g = MatchingGraph(3).ToGraph();
  const std::vector<int> order{0, 1, 2};
  EXPECT_EQ(JumpsOfEdgeOrder(g, order), 2);
  EXPECT_EQ(HatCostOfEdgeOrder(g, order), 3 + 1 + 2);
}

TEST(ConcatSchemesTest, Concatenates) {
  PebblingScheme a;
  a.configs = {{0, 1}};
  PebblingScheme b;
  b.configs = {{2, 3}, {3, 4}};
  const PebblingScheme c = ConcatSchemes({a, b});
  ASSERT_EQ(c.configs.size(), 3u);
  EXPECT_TRUE(c.configs[2].Covers(3, 4));
}

// --- Verifier ------------------------------------------------------------

TEST(VerifierTest, AcceptsValidScheme) {
  const Graph g = PathGraph(3).ToGraph();
  const VerificationResult r = VerifyEdgeOrder(g, {0, 1, 2});
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.hat_cost, 4);       // perfect: m + 1
  EXPECT_EQ(r.effective_cost, 3); // = m
  EXPECT_EQ(r.edges_deleted, 3);
}

TEST(VerifierTest, EffectiveCostSubtractsComponents) {
  const Graph g = MatchingGraph(4).ToGraph();
  const VerificationResult r = VerifyEdgeOrder(g, {0, 1, 2, 3});
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.hat_cost, 8);        // Lemma 2.4: π̂ = 2m
  EXPECT_EQ(r.effective_cost, 4);  // π = m
}

TEST(VerifierTest, RejectsMissingEdges) {
  const Graph g = PathGraph(3).ToGraph();
  PebblingScheme s;
  s.configs = {{g.edge(0).u, g.edge(0).v}};
  const VerificationResult r = VerifyScheme(g, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("undeleted"), std::string::npos);
}

TEST(VerifierTest, RejectsPebblesOnSameVertex) {
  const Graph g = PathGraph(2).ToGraph();
  PebblingScheme s;
  s.configs = {{0, 0}, {0, 1}, {1, 2}};
  EXPECT_FALSE(VerifyScheme(g, s).valid);
}

TEST(VerifierTest, RejectsOutOfRangeVertex) {
  const Graph g = PathGraph(2).ToGraph();
  PebblingScheme s;
  s.configs = {{0, 99}};
  EXPECT_FALSE(VerifyScheme(g, s).valid);
}

TEST(VerifierTest, EmptyGraphNeedsEmptyScheme) {
  Graph g(3);
  EXPECT_TRUE(VerifyScheme(g, PebblingScheme{}).valid);
  PebblingScheme s;
  s.configs = {{0, 1}};
  EXPECT_FALSE(VerifyScheme(g, s).valid);
}

TEST(VerifierTest, NonEdgeConfigsAllowedButCostMoves) {
  // Passing through a non-edge configuration is legal; it just costs moves.
  const Graph g = MatchingGraph(2).ToGraph();  // edges (0,2),(1,3) flattened
  PebblingScheme s;
  s.configs = {{g.edge(0).u, g.edge(0).v},
               {g.edge(0).u, g.edge(1).u},  // non-edge stopover
               {g.edge(1).u, g.edge(1).v}};
  const VerificationResult r = VerifyScheme(g, s);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.hat_cost, 4);  // 2 + 1 + 1: same as jumping directly
}

TEST(VerifierTest, EdgeOrderMustBePermutation) {
  const Graph g = PathGraph(3).ToGraph();
  EXPECT_FALSE(VerifyEdgeOrder(g, {0, 1}).valid);
  EXPECT_FALSE(VerifyEdgeOrder(g, {0, 1, 1}).valid);
  EXPECT_FALSE(VerifyEdgeOrder(g, {0, 1, 9}).valid);
}

TEST(VerifierTest, RepeatedConfigDeletesOnlyOnce) {
  const Graph g = PathGraph(2).ToGraph();
  PebblingScheme s;
  s.configs = {{g.edge(0).u, g.edge(0).v}, {g.edge(0).u, g.edge(0).v}};
  const VerificationResult r = VerifyScheme(g, s);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.edges_deleted, 1);
}

}  // namespace
}  // namespace pebblejoin
