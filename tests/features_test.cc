#include "graph/features.h"

#include <cmath>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

// Field-by-field equality; GraphFeatures carries doubles that must match
// exactly (same arithmetic on the same counts), not approximately.
void ExpectSameFeatures(const GraphFeatures& a, const GraphFeatures& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(a.betti_zero, b.betti_zero);
  EXPECT_EQ(a.max_degree, b.max_degree);
  EXPECT_EQ(a.mean_degree, b.mean_degree);
  EXPECT_EQ(a.density, b.density);
  EXPECT_EQ(a.degree_skew, b.degree_skew);
  EXPECT_EQ(a.line_graph_edges, b.line_graph_edges);
  EXPECT_EQ(a.largest_component_edges, b.largest_component_edges);
  EXPECT_EQ(a.component_size_histogram, b.component_size_histogram);
  EXPECT_EQ(a.equijoin_shape, b.equijoin_shape);
  EXPECT_EQ(a.bipartite, b.bipartite);
}

std::vector<Graph> PropertyCorpus() {
  std::vector<Graph> corpus;
  corpus.push_back(WorstCaseFamily(7).ToGraph());
  corpus.push_back(CompleteBipartite(4, 6).ToGraph());
  corpus.push_back(MatchingGraph(9).ToGraph());
  corpus.push_back(StarGraph(11).ToGraph());
  corpus.push_back(PathGraph(8).ToGraph());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back(RandomBipartite(8, 9, 0.25, seed).ToGraph());
    corpus.push_back(
        RandomConnectedBipartite(6, 6, 14, seed * 7919).ToGraph());
  }
  corpus.push_back(Graph(5));  // empty: all-zero features
  return corpus;
}

TEST(FeaturesPropertyTest, InvariantAcrossCsrAndLegacyLayouts) {
  // The planner's dispatch must not depend on --layout: the CSR degree
  // fast path and the legacy incident-list scan must produce identical
  // feature vectors on every family.
  for (const Graph& g : PropertyCorpus()) {
    const GraphFeatures legacy = ExtractGraphFeatures(g);
    Graph frozen = g;
    frozen.BuildCsr();
    ASSERT_NE(frozen.csr(), nullptr);
    const GraphFeatures csr = ExtractGraphFeatures(frozen);
    ExpectSameFeatures(legacy, csr);
    EXPECT_EQ(LogFeatureVector(legacy), LogFeatureVector(csr));
  }
}

TEST(FeaturesPropertyTest, InvariantAcrossThreads) {
  // Extraction is pure and lock-free; concurrent extraction from many
  // threads must agree bit-for-bit with the single-threaded result, so
  // per-component planning under engine fan-out cannot drift.
  const std::vector<Graph> corpus = PropertyCorpus();
  std::vector<GraphFeatures> expected;
  expected.reserve(corpus.size());
  for (const Graph& g : corpus) expected.push_back(ExtractGraphFeatures(g));

  constexpr int kThreads = 4;
  std::vector<std::vector<GraphFeatures>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&corpus, &got, t] {
      for (const Graph& g : corpus) got[t].push_back(ExtractGraphFeatures(g));
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ExpectSameFeatures(expected[i], got[t][i]);
    }
  }
}

// Golden vectors on the Theorem 3.3 worst-case family: the hub of degree
// n plus n pendant edges gives m = 2n, 2n+1 non-isolated vertices, and a
// line graph of C(n,2) hub pairs plus one edge per spoke/pendant pair.
TEST(FeaturesGoldenTest, WorstCaseFamilyClosedForm) {
  for (int n : {3, 5, 8, 16, 30}) {
    const GraphFeatures f =
        ExtractGraphFeatures(WorstCaseFamily(n).ToGraph());
    EXPECT_EQ(f.num_edges, 2 * n) << n;
    EXPECT_EQ(f.num_vertices, 2 * n + 1) << n;
    EXPECT_EQ(f.max_degree, n) << n;
    EXPECT_EQ(f.line_graph_edges,
              static_cast<int64_t>(n) * (n - 1) / 2 + n)
        << n;
    EXPECT_EQ(f.betti_zero, 1) << n;
    EXPECT_EQ(f.largest_component_edges, 2 * n) << n;
    EXPECT_TRUE(f.bipartite) << n;
    EXPECT_FALSE(f.equijoin_shape) << n;
  }
}

TEST(FeaturesGoldenTest, CompleteBipartiteClosedForm) {
  // K_{k,l}: every left vertex has degree l and vice versa, so
  // |E(L(G))| = k*C(l,2) + l*C(k,2), and the shape is an equijoin.
  for (const auto& [k, l] : {std::pair{2, 3}, {4, 4}, {3, 7}}) {
    const GraphFeatures f =
        ExtractGraphFeatures(CompleteBipartite(k, l).ToGraph());
    EXPECT_EQ(f.num_edges, k * l);
    EXPECT_EQ(f.num_vertices, k + l);
    EXPECT_EQ(f.max_degree, std::max(k, l));
    EXPECT_EQ(f.line_graph_edges,
              static_cast<int64_t>(k) * l * (l - 1) / 2 +
                  static_cast<int64_t>(l) * k * (k - 1) / 2);
    EXPECT_EQ(f.betti_zero, 1);
    EXPECT_TRUE(f.equijoin_shape);
  }
}

TEST(FeaturesGoldenTest, MatchingHasEmptyLineGraph) {
  const GraphFeatures f = ExtractGraphFeatures(MatchingGraph(6).ToGraph());
  EXPECT_EQ(f.num_edges, 6);
  EXPECT_EQ(f.num_vertices, 12);
  EXPECT_EQ(f.line_graph_edges, 0);  // degree 1 everywhere: no pairs
  EXPECT_EQ(f.betti_zero, 6);
  EXPECT_EQ(f.max_degree, 1);
  EXPECT_EQ(f.degree_skew, 1.0);  // regular
  EXPECT_TRUE(f.equijoin_shape);
}

TEST(FeaturesGoldenTest, EmptyGraphIsAllZero) {
  const GraphFeatures f = ExtractGraphFeatures(Graph(4));
  EXPECT_EQ(f.num_vertices, 0);
  EXPECT_EQ(f.num_edges, 0);
  EXPECT_EQ(f.betti_zero, 0);
  EXPECT_EQ(f.line_graph_edges, 0);
  EXPECT_EQ(f.density, 0.0);
  EXPECT_EQ(f.mean_degree, 0.0);
}

TEST(LogFeatureVectorTest, ProjectsTheDocumentedEntries) {
  const GraphFeatures f =
      ExtractGraphFeatures(WorstCaseFamily(5).ToGraph());
  const auto v = LogFeatureVector(f);
  EXPECT_DOUBLE_EQ(v[0], std::log1p(static_cast<double>(f.num_edges)));
  EXPECT_DOUBLE_EQ(v[1], std::log1p(static_cast<double>(f.num_vertices)));
  EXPECT_DOUBLE_EQ(v[2],
                   std::log1p(static_cast<double>(f.line_graph_edges)));
  EXPECT_DOUBLE_EQ(v[3], std::log1p(static_cast<double>(f.max_degree)));
  EXPECT_DOUBLE_EQ(v[4], f.density);
  EXPECT_DOUBLE_EQ(v[5], std::log1p(static_cast<double>(f.betti_zero)));
}

}  // namespace
}  // namespace pebblejoin
