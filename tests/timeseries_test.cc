// Sliding-window ring tests: fake-clock determinism, bucket rotation and
// expiry, windowed quantiles, and (under TSan via the `tsan` label)
// concurrent writers against a concurrent reader.

#include "obs/timeseries.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

WindowOptions SmallWindow() {
  WindowOptions options;
  options.num_buckets = 4;
  options.bucket_ms = 100;
  return options;
}

TEST(WindowedCounterTest, SumsWithinSpan) {
  WindowedCounter counter(SmallWindow());
  counter.Add(0, 3);
  counter.Add(150, 2);   // second bucket
  counter.Add(250, 1);   // third bucket
  EXPECT_EQ(counter.WindowSum(250), 6);
  // A one-bucket span sees only the bucket containing now.
  EXPECT_EQ(counter.Sum(250, 100), 1);
  EXPECT_EQ(counter.Sum(250, 200), 3);
}

TEST(WindowedCounterTest, BucketsExpireAfterRotation) {
  WindowedCounter counter(SmallWindow());
  counter.Add(0, 5);
  EXPECT_EQ(counter.WindowSum(0), 5);
  // Still inside the 4 x 100ms ring.
  EXPECT_EQ(counter.WindowSum(399), 5);
  // One full ring later the cell's period stamp is stale: the count is
  // gone without any sweeper having run.
  EXPECT_EQ(counter.WindowSum(400), 0);
  // Writing far in the future reclaims cells; old counts never resurface.
  counter.Add(1000, 7);
  EXPECT_EQ(counter.WindowSum(1000), 7);
}

TEST(WindowedCounterTest, FakeClockIsDeterministic) {
  // Two rings driven by the same synthetic clock sequence agree exactly —
  // bucket rotation depends only on now_ms, never on the wall clock.
  WindowedCounter a(SmallWindow());
  WindowedCounter b(SmallWindow());
  const int64_t times[] = {5, 99, 100, 250, 260, 399, 400, 555};
  for (int64_t t : times) {
    a.Add(t);
    b.Add(t);
  }
  for (int64_t t = 0; t <= 700; t += 50) {
    EXPECT_EQ(a.WindowSum(t), b.WindowSum(t)) << "t=" << t;
    EXPECT_EQ(a.Sum(t, 200), b.Sum(t, 200)) << "t=" << t;
  }
}

TEST(WindowedCounterTest, SpanClampsToRingCapacity) {
  WindowedCounter counter(SmallWindow());
  counter.Add(50);
  EXPECT_EQ(counter.window_span_ms(), 400);
  // Asking for more than the ring holds degrades to the full ring.
  EXPECT_EQ(counter.Sum(50, 1 << 20), 1);
}

TEST(WindowedHistogramTest, AggregateTracksWindow) {
  WindowedHistogram hist(SmallWindow());
  hist.Record(0, 10);
  hist.Record(150, 20);
  hist.Record(250, 30);
  const WindowedHistogram::Snapshot all = hist.Aggregate(250, 400);
  EXPECT_EQ(all.count, 3);
  EXPECT_EQ(all.sum, 60);
  EXPECT_EQ(all.min, 10);
  EXPECT_EQ(all.max, 30);
  // Narrow the span: only the newest sample remains.
  const WindowedHistogram::Snapshot tail = hist.Aggregate(250, 100);
  EXPECT_EQ(tail.count, 1);
  EXPECT_EQ(tail.sum, 30);
  EXPECT_EQ(tail.min, 30);
  EXPECT_EQ(tail.max, 30);
}

TEST(WindowedHistogramTest, EmptyWindowIsSentinel) {
  WindowedHistogram hist(SmallWindow());
  const WindowedHistogram::Snapshot empty = hist.Aggregate(0, 400);
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.p50, -1);
  EXPECT_EQ(empty.p99, -1);
  hist.Record(0, 42);
  // A full rotation later the sample has aged out again.
  const WindowedHistogram::Snapshot aged = hist.Aggregate(400, 400);
  EXPECT_EQ(aged.count, 0);
  EXPECT_EQ(aged.p50, -1);
}

TEST(WindowedHistogramTest, QuantilesClampToObservedRange) {
  WindowedHistogram hist(SmallWindow());
  for (int i = 0; i < 100; ++i) hist.Record(10, 1000);
  const WindowedHistogram::Snapshot snap = hist.Aggregate(10, 400);
  EXPECT_EQ(snap.count, 100);
  // All samples identical: every quantile is exactly that value, because
  // the estimate clamps to [min, max].
  EXPECT_EQ(snap.p50, 1000);
  EXPECT_EQ(snap.p95, 1000);
  EXPECT_EQ(snap.p99, 1000);
}

TEST(WindowedHistogramTest, QuantilesAreOrdered) {
  WindowedHistogram hist(SmallWindow());
  for (int i = 1; i <= 1000; ++i) hist.Record(20, i);
  const WindowedHistogram::Snapshot snap = hist.Aggregate(20, 400);
  EXPECT_EQ(snap.count, 1000);
  EXPECT_LE(snap.min, snap.p50);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 1000);
}

// Concurrency smoke for TSan: writers hammer the rings across bucket
// rotations while a reader scrapes. The claim protocol may drop a few
// increments at rotation edges (documented), so only bounds are checked.
TEST(TimeseriesTest, ConcurrentWritersAndReaderAreRaceFree) {
  WindowOptions options;
  options.num_buckets = 8;
  options.bucket_ms = 1;  // rotate constantly to stress ClaimCell
  WindowedCounter counter(options);
  WindowedHistogram hist(options);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    int64_t t = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)counter.WindowSum(t);
      (void)hist.Aggregate(t, 8);
      ++t;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t now = i / 16;  // several rotations over the run
        counter.Add(now);
        hist.Record(now, w * kPerWriter + i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Everything still inside the final ring is a subset of what was
  // written; rotation-edge losses make exact equality unguaranteed.
  const int64_t final_now = (kPerWriter - 1) / 16;
  EXPECT_GE(counter.WindowSum(final_now), 0);
  EXPECT_LE(counter.WindowSum(final_now),
            int64_t{kWriters} * kPerWriter);
  const WindowedHistogram::Snapshot snap = hist.Aggregate(final_now, 8);
  EXPECT_GE(snap.count, 0);
  EXPECT_LE(snap.count, int64_t{kWriters} * kPerWriter);
}

}  // namespace
}  // namespace pebblejoin
