// Tests for the event journal and flight recorder (obs/log.h): golden
// JSONL lines under a fake clock, level filtering, ring eviction, worker
// merge ordering, flight-recorder dumps, thread-safe sink writes, and the
// engine integration (a degraded solve dumps its postmortem trail; the
// journal is identical across thread counts modulo worker tags and
// timings).

#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "graph/generators.h"
#include "obs/json_value.h"
#include "util/budget.h"

namespace pebblejoin {
namespace {

// A journal writing into a string, on a microsecond tick clock that
// advances by `step_us` per read — byte-stable golden lines.
struct TestJournal {
  explicit TestJournal(LogLevel min_level = LogLevel::kDebug,
                       int64_t step_us = 10)
      : journal(MakeOptions(min_level, step_us)) {
    journal.AttachStream(&sink);
  }

  Journal::Options MakeOptions(LogLevel min_level, int64_t step_us) {
    Journal::Options options;
    options.min_level = min_level;
    options.clock_us = [this, step_us] {
      const int64_t t = next_us;
      next_us += step_us;
      return t;
    };
    return options;
  }

  std::vector<std::string> Lines() const {
    std::vector<std::string> lines;
    std::istringstream in(sink.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  int64_t next_us = 0;
  std::ostringstream sink;
  Journal journal;
};

// --- LogLevel -------------------------------------------------------------

TEST(LogLevelTest, ParseRoundTripsEveryName) {
  for (const char* name : {"debug", "info", "warn", "error", "off"}) {
    LogLevel level = LogLevel::kInfo;
    ASSERT_TRUE(ParseLogLevel(name, &level)) << name;
    EXPECT_STREQ(LogLevelName(level), name);
  }
}

TEST(LogLevelTest, ParseRejectsUnknownSpellings) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
}

// --- Journal --------------------------------------------------------------

TEST(JournalTest, GoldenJsonlLines) {
  TestJournal t;
  t.journal.Emit(LogLevel::kInfo, "solve.end",
                 {LogField::Num("cost", 42), LogField::Str("stop", "none"),
                  LogField::Flag("degraded", false)});
  t.journal.Emit(LogLevel::kError, "verify.failed",
                 {LogField::Str("error", "bad \"scheme\"")});
  const std::vector<std::string> lines = t.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"ts_us\":0,\"level\":\"info\",\"event\":\"solve.end\","
            "\"cost\":42,\"stop\":\"none\",\"degraded\":false}");
  EXPECT_EQ(lines[1],
            "{\"ts_us\":10,\"level\":\"error\",\"event\":\"verify.failed\","
            "\"error\":\"bad \\\"scheme\\\"\"}");
  EXPECT_EQ(t.journal.lines_written(), 2);
}

TEST(JournalTest, MinLevelFiltersAndOffSilencesEverything) {
  TestJournal t(LogLevel::kWarn);
  EXPECT_FALSE(t.journal.Passes(LogLevel::kDebug));
  EXPECT_FALSE(t.journal.Passes(LogLevel::kInfo));
  EXPECT_TRUE(t.journal.Passes(LogLevel::kWarn));
  EXPECT_TRUE(t.journal.Passes(LogLevel::kError));
  EXPECT_FALSE(t.journal.Passes(LogLevel::kOff));
  t.journal.Emit(LogLevel::kInfo, "dropped", {});
  t.journal.Emit(LogLevel::kWarn, "kept", {});
  ASSERT_EQ(t.Lines().size(), 1u);
  EXPECT_EQ(t.journal.lines_written(), 1);

  TestJournal off(LogLevel::kOff);
  off.journal.Emit(LogLevel::kError, "dropped", {});
  EXPECT_EQ(off.journal.lines_written(), 0);
}

TEST(JournalTest, NoSinkDropsEverything) {
  Journal journal;
  EXPECT_FALSE(journal.enabled());
  EXPECT_FALSE(journal.Passes(LogLevel::kError));
  journal.Emit(LogLevel::kError, "dropped", {});
  EXPECT_EQ(journal.lines_written(), 0);
}

TEST(JournalTest, ConcurrentWritersNeverTearALine) {
  TestJournal t;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < kPerThread; ++i) {
        t.journal.Emit(LogLevel::kInfo, "tick",
                       {LogField::Num("thread", w), LogField::Num("i", i)});
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const std::vector<std::string> lines = t.Lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(t.journal.lines_written(), kThreads * kPerThread);
  for (const std::string& line : lines) {
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &error).has_value()) << line;
  }
}

// --- EventLog: ring + merge ----------------------------------------------

TEST(EventLogTest, RingEvictsOldestAndCountsDrops) {
  EventLog log(/*journal=*/nullptr, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Emit(LogLevel::kDebug, "e", {LogField::Num("i", i)});
  }
  EXPECT_EQ(log.emitted(), 5);
  EXPECT_EQ(log.dropped(), 2);
  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events().front().fields[0].num, 2);
  EXPECT_EQ(log.events().back().fields[0].num, 4);
}

TEST(EventLogTest, RingRetainsLevelsTheJournalFilteredOut) {
  TestJournal t(LogLevel::kWarn);
  EventLog log(&t.journal, /*capacity=*/8);
  log.Emit(LogLevel::kDebug, "quiet", {});
  log.Emit(LogLevel::kWarn, "loud", {});
  EXPECT_EQ(t.journal.lines_written(), 1);  // only the warn passed
  EXPECT_EQ(log.events().size(), 2u);       // the ring kept both
}

TEST(EventLogTest, BaseFieldStampsEveryEvent) {
  TestJournal t;
  EventLog log(&t.journal, 8);
  log.AddBaseField(LogField::Num("line", 7));
  log.Emit(LogLevel::kInfo, "solve.begin", {LogField::Num("edges", 3)});
  const std::vector<std::string> lines = t.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"line\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"edges\":3"), std::string::npos);
}

TEST(EventLogTest, MergeTagsWorkersAndTeesInMergeOrder) {
  TestJournal t;
  EventLog parent(&t.journal, 8);
  // Buffer-only children on the parent's timeline: nothing reaches the
  // journal until the merge, so the journal order is the merge order.
  EventLog child_a(8, [&parent] { return parent.NowUs(); });
  EventLog child_b(8, [&parent] { return parent.NowUs(); });
  child_b.Emit(LogLevel::kInfo, "b.first", {});
  child_a.Emit(LogLevel::kInfo, "a.first", {});
  EXPECT_EQ(t.journal.lines_written(), 0);
  parent.MergeFrom(child_a, /*worker=*/0);
  parent.MergeFrom(child_b, /*worker=*/1);
  const std::vector<std::string> lines = t.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"a.first\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"worker\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"b.first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"worker\":1"), std::string::npos);
  EXPECT_EQ(parent.events().size(), 2u);
}

TEST(EventLogTest, MergeCarriesChildDropCounts) {
  EventLog parent(/*journal=*/nullptr, /*capacity=*/8);
  EventLog child(/*capacity=*/2, [] { return int64_t{0}; });
  for (int i = 0; i < 5; ++i) child.Emit(LogLevel::kDebug, "e", {});
  parent.MergeFrom(child, /*worker=*/3);
  EXPECT_EQ(parent.events().size(), 2u);  // only what the child retained
  EXPECT_EQ(parent.emitted(), 5);         // 2 merged + 3 the child lost
  EXPECT_EQ(parent.dropped(), 3);
}

// --- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, DumpReplaysRingAtWarnWithOriginalLevels) {
  TestJournal t(LogLevel::kWarn);
  EventLog log(&t.journal, 4);
  log.Emit(LogLevel::kDebug, "ladder.rung", {LogField::Num("cost", 9)});
  log.Emit(LogLevel::kInfo, "component.done", {});
  EXPECT_EQ(t.journal.lines_written(), 0);  // both below the live filter
  log.DumpFlightRecorder("deadline-expired");
  const std::vector<std::string> lines = t.Lines();
  ASSERT_EQ(lines.size(), 4u);  // header + 2 replays + footer
  EXPECT_NE(lines[0].find("\"event\":\"flight_recorder.dump\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"deadline-expired\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"retained\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"replay\":\"debug\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cost\":9"), std::string::npos);
  EXPECT_NE(lines[2].find("\"replay\":\"info\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"event\":\"flight_recorder.end\""),
            std::string::npos);
}

TEST(FlightRecorderTest, DumpReportsDropsAndIsANoOpWithoutASink) {
  TestJournal t;
  EventLog log(&t.journal, 2);
  for (int i = 0; i < 5; ++i) log.Emit(LogLevel::kDebug, "e", {});
  log.DumpFlightRecorder("node-budget-exhausted");
  ASSERT_FALSE(t.Lines().empty());
  EXPECT_NE(t.Lines()[t.Lines().size() - 4].find("\"dropped\":3"),
            std::string::npos);

  EventLog orphan(/*journal=*/nullptr, 2);
  orphan.Emit(LogLevel::kDebug, "e", {});
  orphan.DumpFlightRecorder("ignored");  // must not crash
}

// --- Engine integration ---------------------------------------------------

// Parses a journal line and strips everything that may legitimately vary
// across thread counts: timestamps, worker tags, wall clocks, and the
// echoed thread count itself.
std::string NormalizeJournalLine(const std::string& line) {
  std::string error;
  std::optional<JsonValue> doc = JsonValue::Parse(line, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  std::string out;
  for (const auto& [key, value] : doc->object_members()) {
    if (key == "ts_us" || key == "worker" || key == "threads") continue;
    if (key.size() > 3 && key.compare(key.size() - 3, 3, "_us") == 0) {
      continue;
    }
    out += key + "=";
    if (value.is_string()) {
      out += value.string_value();
    } else if (value.is_number()) {
      out += std::to_string(value.int64_value().value_or(0));
    } else {
      out += value.is_bool() ? (value.bool_value() ? "true" : "false") : "?";
    }
    out += ";";
  }
  return out;
}

std::vector<std::string> SolveJournal(const BipartiteGraph& g, int threads) {
  std::ostringstream sink;
  Journal::Options journal_options;
  journal_options.min_level = LogLevel::kDebug;
  Journal journal(journal_options);
  journal.AttachStream(&sink);
  AnalyzerOptions options;
  options.solver = SolverChoice::kFallback;
  options.threads = threads;
  options.journal = &journal;
  const JoinAnalyzer analyzer(options);
  analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral);
  std::vector<std::string> lines;
  std::istringstream in(sink.str());
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(NormalizeJournalLine(line));
  }
  return lines;
}

TEST(JournalEngineTest, ZeroDeadlineDumpsTheFlightRecorder) {
  std::ostringstream sink;
  Journal journal;
  journal.AttachStream(&sink);
  AnalyzerOptions options;
  options.solver = SolverChoice::kFallback;
  options.budget.deadline_ms = 0;
  options.journal = &journal;
  const JoinAnalyzer analyzer(options);
  const JoinAnalysis analysis =
      analyzer.AnalyzeJoinGraph(WorstCaseFamily(8), PredicateClass::kGeneral);
  // The ladder was cut short...
  ASSERT_FALSE(analysis.solution.outcomes.empty());
  EXPECT_TRUE(analysis.solution.outcomes[0].degraded());
  // ...and the journal carries the postmortem: the dump markers plus the
  // replayed debug-level rung trail the info filter would have hidden.
  const std::string text = sink.str();
  EXPECT_NE(text.find("\"event\":\"flight_recorder.dump\""),
            std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"deadline-expired\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"ladder.rung\""), std::string::npos);
  EXPECT_NE(text.find("\"replay\":\"debug\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"flight_recorder.end\""),
            std::string::npos);
}

TEST(JournalEngineTest, HealthySolveStaysQuietAtInfo) {
  std::ostringstream sink;
  Journal journal;  // default min level: info
  journal.AttachStream(&sink);
  AnalyzerOptions options;
  options.journal = &journal;
  const JoinAnalyzer analyzer(options);
  analyzer.AnalyzeJoinGraph(WorstCaseFamily(6), PredicateClass::kGeneral);
  // One solve.end line, no dump, no debug-level noise.
  const std::vector<std::string> lines = [&] {
    std::vector<std::string> out;
    std::istringstream in(sink.str());
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\":\"solve.end\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"degraded\":false"), std::string::npos);
}

TEST(JournalEngineTest, JournalIsDeterministicAcrossThreadCounts) {
  // A sparse multi-component random graph: real fan-out, many worker
  // slices, each small enough that every rung completes — the solve is
  // deterministic, so any journal difference is a merge-ordering bug.
  // (A wall-clock deadline would make the outcomes themselves depend on
  // timing; that is the solve's nondeterminism, not the journal's.)
  const BipartiteGraph g = RandomBipartiteWithEdges(30, 30, 25, 7);
  const std::vector<std::string> seq = SolveJournal(g, 1);
  const std::vector<std::string> par = SolveJournal(g, 4);
  EXPECT_EQ(seq, par);
  EXPECT_GT(seq.size(), 2u);
}

}  // namespace
}  // namespace pebblejoin
