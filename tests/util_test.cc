#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 42;
  const uint64_t first = SplitMix64(&s);
  const uint64_t second = SplitMix64(&s);
  EXPECT_NE(first, second);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntLoHiInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(4);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(7);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(8);
  const std::vector<int> perm = rng.Permutation(20);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(9);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<int>{0});
}

TEST(RngTest, SubsetSizeAndSortedUnique) {
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> s = rng.Subset(10, 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
    EXPECT_EQ(std::set<int>(s.begin(), s.end()).size(), 4u);
  }
}

TEST(RngTest, SubsetFullAndEmpty) {
  Rng rng(11);
  EXPECT_TRUE(rng.Subset(5, 0).empty());
  const std::vector<int> full = rng.Subset(5, 5);
  EXPECT_EQ(full, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(12);
  std::vector<int> v{1, 1, 2, 3, 5, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(StopwatchTest, MonotoneAndRestartable) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile int busy = 0;
  for (int i = 0; i < 100000; ++i) busy = i;
  (void)busy;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  // ElapsedMicros truncates to whole microseconds, so a read taken *after*
  // `second` can trail it by strictly less than one microsecond.
  EXPECT_GT(watch.ElapsedMicros() + 1, static_cast<int64_t>(second * 1e6));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

namespace {

// Minimal sink exposing the RecordMicros method ScopedTimerT expects.
struct RecordingSink {
  void RecordMicros(int64_t micros) {
    ++calls;
    last_micros = micros;
  }
  int calls = 0;
  int64_t last_micros = -1;
};

}  // namespace

TEST(ScopedTimerTest, RecordsOnceOnDestruction) {
  RecordingSink sink;
  {
    ScopedTimerT<RecordingSink> timer(&sink);
    EXPECT_EQ(sink.calls, 0);  // nothing recorded while alive
    volatile int busy = 0;
    for (int i = 0; i < 10000; ++i) busy = i;
    (void)busy;
  }
  EXPECT_EQ(sink.calls, 1);
  EXPECT_GE(sink.last_micros, 0);
}

TEST(ScopedTimerTest, NullSinkIsNoOp) {
  ScopedTimerT<RecordingSink> timer(nullptr);  // must not crash on destruct
}

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter t({"n", "value"});
  t.AddRow({"1", "short"});
  t.AddRow({"100", "a-much-longer-cell"});
  const std::string rendered = t.Render();
  EXPECT_NE(rendered.find("| n   "), std::string::npos);
  EXPECT_NE(rendered.find("a-much-longer-cell"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(TablePrinterTest, HeaderOnlyTableRenders) {
  TablePrinter t({"only"});
  const std::string rendered = t.Render();
  EXPECT_NE(rendered.find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(FormatHelpersTest, FormatInt) {
  EXPECT_EQ(FormatInt(0), "0");
  EXPECT_EQ(FormatInt(-12), "-12");
  EXPECT_EQ(FormatInt(123456789012345LL), "123456789012345");
}

TEST(FormatHelpersTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.25, 2), "1.25");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
}

}  // namespace
}  // namespace pebblejoin
