#include "graph/line_graph.h"

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(LineGraphTest, EdgeCountFormula) {
  // A star K_{1,m} has line graph K_m.
  EXPECT_EQ(LineGraphEdgeCount(StarGraph(5).ToGraph()), 10);
  // A path with m edges has a path line graph with m-1 edges.
  EXPECT_EQ(LineGraphEdgeCount(PathGraph(6).ToGraph()), 5);
  // A matching's line graph has no edges.
  EXPECT_EQ(LineGraphEdgeCount(MatchingGraph(4).ToGraph()), 0);
}

TEST(LineGraphTest, StarBecomesClique) {
  const Graph line = BuildLineGraph(StarGraph(4).ToGraph());
  EXPECT_EQ(line.num_vertices(), 4);
  EXPECT_EQ(line.num_edges(), 6);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) EXPECT_TRUE(line.HasEdge(i, j));
  }
}

TEST(LineGraphTest, PathBecomesPath) {
  const Graph line = BuildLineGraph(PathGraph(5).ToGraph());
  EXPECT_EQ(line.num_vertices(), 5);
  EXPECT_EQ(line.num_edges(), 4);
  for (int i = 0; i + 1 < 5; ++i) EXPECT_TRUE(line.HasEdge(i, i + 1));
  EXPECT_FALSE(line.HasEdge(0, 2));
}

TEST(LineGraphTest, AdjacencyMatchesSharedEndpoints) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = RandomGraph(10, 0.3, seed);
    const Graph line = BuildLineGraph(g);
    ASSERT_EQ(line.num_vertices(), g.num_edges());
    for (int a = 0; a < g.num_edges(); ++a) {
      for (int b = a + 1; b < g.num_edges(); ++b) {
        EXPECT_EQ(line.HasEdge(a, b), g.edge(a).Touches(g.edge(b)));
      }
    }
  }
}

TEST(LineGraphTest, WorstCaseFamilyLineGraphShape) {
  // L(Gₙ) is K_n plus n pendant nodes (Theorem 3.3 / Figure 1b). With our
  // edge ordering, spokes have even ids 2i and pendants odd ids 2i+1.
  const int n = 5;
  const Graph line = BuildLineGraph(WorstCaseFamily(n).ToGraph());
  ASSERT_EQ(line.num_vertices(), 2 * n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      EXPECT_TRUE(line.HasEdge(2 * i, 2 * j));  // spokes form K_n
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(line.Degree(2 * i + 1), 1);       // pendants have degree 1
    EXPECT_TRUE(line.HasEdge(2 * i + 1, 2 * i));
  }
}

TEST(LineGraphBudgetTest, RespectsBudget) {
  const Graph star = StarGraph(100).ToGraph();  // line graph = K_100
  EXPECT_FALSE(BuildLineGraphWithBudget(star, 1000).has_value());
  EXPECT_TRUE(BuildLineGraphWithBudget(star, 5000).has_value());
}

TEST(LineGraphTest, EmptyAndSingleEdge) {
  Graph g(3);
  EXPECT_EQ(BuildLineGraph(g).num_vertices(), 0);
  g.AddEdge(0, 1);
  const Graph line = BuildLineGraph(g);
  EXPECT_EQ(line.num_vertices(), 1);
  EXPECT_EQ(line.num_edges(), 0);
}

}  // namespace
}  // namespace pebblejoin
