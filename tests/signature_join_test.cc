#include "join/signature_join.h"

#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/predicates.h"
#include "join/workload.h"
#include "partition/containment_partition.h"

namespace pebblejoin {
namespace {

TEST(SetSignatureTest, SubsetImpliesSignatureContainment) {
  // The soundness property the prefilter relies on.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SetWorkloadOptions options;
    options.num_left = 20;
    options.num_right = 20;
    options.universe = 30;
    options.seed = seed;
    const Realization<IntSet> w = GenerateSetWorkload(options);
    for (int bits : {8, 16, 32, 64}) {
      for (const IntSet& r : w.left.tuples()) {
        for (const IntSet& s : w.right.tuples()) {
          if (r.IsSubsetOf(s)) {
            EXPECT_EQ(SetSignature(r, bits) & ~SetSignature(s, bits), 0u);
          }
        }
      }
    }
  }
}

TEST(SetSignatureTest, EmptySetHasEmptySignature) {
  EXPECT_EQ(SetSignature(IntSet(), 32), 0u);
}

TEST(SetSignatureTest, DeterministicAcrossCalls) {
  const IntSet s = IntSet::Of({3, 17, 255});
  EXPECT_EQ(SetSignature(s, 24), SetSignature(s, 24));
  // Different widths generally give different signatures.
  EXPECT_NE(SetSignature(s, 7) | SetSignature(s, 64), 0u);
}

TEST(SignatureJoinTest, MatchesInvertedIndexBuilder) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SetWorkloadOptions options;
    options.num_left = 30;
    options.num_right = 30;
    options.universe = 20;
    options.seed = seed;
    const Realization<IntSet> w = GenerateSetWorkload(options);
    for (int bits : {4, 16, 64}) {
      SignatureJoinStats stats;
      const BipartiteGraph sig = BuildSetContainmentJoinGraphSignature(
          w.left, w.right, bits, &stats);
      const BipartiteGraph reference =
          BuildSetContainmentJoinGraph(w.left, w.right);
      EXPECT_TRUE(sig.SameEdgeSet(reference)) << seed << " bits=" << bits;
      EXPECT_EQ(stats.result_pairs, reference.num_edges());
      EXPECT_GE(stats.candidate_pairs, stats.result_pairs);
    }
  }
}

TEST(SignatureJoinTest, WiderSignaturesFilterBetter) {
  SetWorkloadOptions options;
  options.num_left = 60;
  options.num_right = 60;
  options.universe = 40;
  options.max_left_size = 4;
  options.seed = 9;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  SignatureJoinStats narrow;
  SignatureJoinStats wide;
  BuildSetContainmentJoinGraphSignature(w.left, w.right, 8, &narrow);
  BuildSetContainmentJoinGraphSignature(w.left, w.right, 64, &wide);
  EXPECT_EQ(narrow.result_pairs, wide.result_pairs);
  EXPECT_LE(wide.candidate_pairs, narrow.candidate_pairs);
}

// --- Partitioned containment joins ----------------------------------------

TEST(ContainmentPartitionTest, BothPlansComplete) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SetWorkloadOptions options;
    options.num_left = 25;
    options.num_right = 25;
    options.universe = 15;
    options.seed = seed;
    const Realization<IntSet> w = GenerateSetWorkload(options);
    for (int fragments : {1, 2, 4, 7}) {
      EXPECT_TRUE(PlanIsComplete(
          w.left, w.right, ReplicateLeftPlan(w.left, w.right, fragments)))
          << seed;
      EXPECT_TRUE(PlanIsComplete(
          w.left, w.right, ElementRoutingPlan(w.left, w.right, fragments)))
          << seed;
    }
  }
}

TEST(ContainmentPartitionTest, ReplicateLeftOverheadIsExact) {
  SetRelation left("R");
  SetRelation right("S");
  for (int i = 0; i < 10; ++i) left.Add(IntSet::Of({i}));
  for (int j = 0; j < 6; ++j) right.Add(IntSet::Of({j, j + 1}));
  const ContainmentPartitionPlan plan = ReplicateLeftPlan(left, right, 4);
  EXPECT_EQ(plan.LeftCopies(), 40);   // every subset to all 4 fragments
  EXPECT_EQ(plan.RightCopies(), 6);   // containers partitioned once
  EXPECT_EQ(plan.ReplicationOverhead(), 30);
}

TEST(ContainmentPartitionTest, ElementRoutingReplicatesContainers) {
  SetRelation left("R");
  left.Add(IntSet::Of({1}));
  left.Add(IntSet::Of({2}));
  SetRelation right("S");
  right.Add(IntSet::Of({1, 2, 3, 4, 5, 6, 7, 8}));  // big container
  const ContainmentPartitionPlan plan = ElementRoutingPlan(left, right, 4);
  // The big container spans several element fragments.
  EXPECT_GT(static_cast<int>(plan.right_fragments[0].size()), 1);
  // Non-empty subsets go to exactly one fragment.
  EXPECT_EQ(plan.left_fragments[0].size(), 1u);
  EXPECT_TRUE(PlanIsComplete(left, right, plan));
}

TEST(ContainmentPartitionTest, EmptySubsetGoesEverywhere) {
  SetRelation left("R");
  left.Add(IntSet());
  SetRelation right("S");
  right.Add(IntSet::Of({5}));
  const ContainmentPartitionPlan plan = ElementRoutingPlan(left, right, 3);
  EXPECT_EQ(plan.left_fragments[0].size(), 3u);
  EXPECT_TRUE(PlanIsComplete(left, right, plan));
}

TEST(ContainmentPartitionTest, IncompletePlanDetected) {
  SetRelation left("R");
  left.Add(IntSet::Of({1}));
  SetRelation right("S");
  right.Add(IntSet::Of({1, 2}));
  ContainmentPartitionPlan bad;
  bad.fragments = 2;
  bad.left_fragments = {{0}};
  bad.right_fragments = {{1}};  // the joining pair never meets
  EXPECT_FALSE(PlanIsComplete(left, right, bad));
}

TEST(ContainmentPartitionTest, OneFragmentIsFree) {
  SetWorkloadOptions options;
  options.seed = 2;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  EXPECT_EQ(ReplicateLeftPlan(w.left, w.right, 1).ReplicationOverhead(), 0);
  EXPECT_EQ(ElementRoutingPlan(w.left, w.right, 1).ReplicationOverhead(), 0);
}

}  // namespace
}  // namespace pebblejoin
