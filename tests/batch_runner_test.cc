// BatchRunner: JSONL round-trip against the single-shot engine path,
// per-line error records that never abort the batch, thread-count
// invariance of the output, and budget admission (queue vs reject) against
// a deterministic fake clock. Runs under ThreadSanitizer in CI.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "engine/batch_runner.h"
#include "engine/solve_engine.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "io/graph_io.h"
#include "obs/json.h"
#include "util/budget.h"

#include "json_test_util.h"

namespace pebblejoin {
namespace {

// One corpus line: {"graph": "<serialized>"<extra>}.
std::string Line(const BipartiteGraph& g, const std::string& extra = "") {
  return "{\"graph\": \"" + JsonEscape(SerializeBipartiteGraph(g)) + "\"" +
         extra + "}";
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> RunBatch(const std::string& input,
                                  BatchRunner::Options options,
                                  BatchRunner::Summary* summary = nullptr) {
  SolveEngine engine;
  BatchRunner runner(&engine, options);
  std::istringstream in(input);
  std::ostringstream out;
  const BatchRunner::Summary s = runner.Run(in, out);
  if (summary != nullptr) *summary = s;
  return SplitLines(out.str());
}

TEST(BatchRunnerTest, GoldenRoundTripMatchesSingleShot) {
  const std::vector<BipartiteGraph> graphs = {
      WorstCaseFamily(5), CompleteBipartite(3, 3),
      RandomConnectedBipartite(5, 5, 12, /*seed=*/4),
      DisjointUnion(StarGraph(4), EvenCycle(4))};
  std::string input;
  for (const BipartiteGraph& g : graphs) input += Line(g) + "\n";

  BatchRunner::Summary summary;
  const std::vector<std::string> lines =
      RunBatch(input, BatchRunner::Options(), &summary);
  ASSERT_EQ(lines.size(), graphs.size());
  EXPECT_EQ(summary.solved, static_cast<int64_t>(graphs.size()));
  EXPECT_EQ(summary.errors, 0);

  for (size_t i = 0; i < graphs.size(); ++i) {
    SolveEngine fresh;
    SolveRequest request;
    request.graph = &graphs[i];
    const std::string single =
        AnalysisJson(fresh.Solve(request).analysis);
    EXPECT_EQ(NormalizeTimings(lines[i]), NormalizeTimings(single))
        << "line " << i;
  }
}

TEST(BatchRunnerTest, PerLineOverridesApply) {
  const BipartiteGraph g = WorstCaseFamily(5);
  const std::string input =
      Line(g, ", \"solver\": \"greedy\"") + "\n" +
      Line(g, ", \"predicate\": \"sets\"") + "\n" +
      // A budget without a solver selects the ladder (CLI convention).
      Line(g, ", \"deadline_ms\": 1000") + "\n";
  const std::vector<std::string> lines =
      RunBatch(input, BatchRunner::Options());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"greedy-walk\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"predicate\":\"set-containment\""),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"winner\":"), std::string::npos);
}

TEST(BatchRunnerTest, MalformedLinesYieldErrorRecordsAndTheRunContinues) {
  const BipartiteGraph g = WorstCaseFamily(4);
  const std::string input = Line(g) + "\n" +
                            "not json\n" +
                            "\n" +  // blank: skipped, keeps its line number
                            "{\"predicate\": \"sets\"}\n" +  // no graph
                            "{\"graph\": \"garbage text\"}\n" +
                            Line(g, ", \"frobnicate\": 1") + "\n" +
                            Line(g, ", \"deadline_ms\": -3") + "\n" +
                            Line(g) + "\n";
  BatchRunner::Summary summary;
  const std::vector<std::string> lines =
      RunBatch(input, BatchRunner::Options(), &summary);
  ASSERT_EQ(lines.size(), 7u);  // blank line produces no record
  EXPECT_EQ(summary.lines_read, 7);
  EXPECT_EQ(summary.solved, 2);
  EXPECT_EQ(summary.errors, 5);

  // Error records carry the 1-based input line number (blank included).
  EXPECT_NE(lines[1].find("\"line\":2,\"error\":"), std::string::npos);
  EXPECT_NE(lines[2].find("\"line\":4,\"error\":"), std::string::npos);
  EXPECT_NE(lines[2].find("missing required key"), std::string::npos);
  EXPECT_NE(lines[3].find("\"line\":5,\"error\":"), std::string::npos);
  EXPECT_NE(lines[4].find("unknown key"), std::string::npos);
  EXPECT_NE(lines[5].find("\"line\":7,\"error\":"), std::string::npos);
  // The last line solved even though five before it failed.
  EXPECT_NE(lines[6].find("\"edge_order\""), std::string::npos);
}

TEST(BatchRunnerTest, ThreadCountDoesNotChangeTheOutput) {
  std::string input;
  for (int seed = 0; seed < 12; ++seed) {
    input += Line(RandomConnectedBipartite(4, 4, 9, seed)) + "\n";
  }
  BatchRunner::Options sequential;
  BatchRunner::Options wide;
  wide.threads = 4;
  wide.block_lines = 5;  // exercise the block boundary too
  const std::vector<std::string> a = RunBatch(input, sequential);
  const std::vector<std::string> b = RunBatch(input, wide);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(NormalizeTimings(a[i]), NormalizeTimings(b[i]))
        << "line " << i;
  }
}

TEST(BatchRunnerTest, RejectAdmissionDropsLinesOnceThePoolIsDry) {
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(4);
  const std::string input = Line(g) + "\n" + Line(g) + "\n" + Line(g) + "\n";

  BatchRunner::Options options;
  options.batch_deadline_ms = 0;  // dry from the start
  options.admission = BatchRunner::Admission::kReject;
  options.clock = clock.AsFunction();
  BatchRunner::Summary summary;
  const std::vector<std::string> lines = RunBatch(input, options, &summary);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(summary.rejected, 3);
  EXPECT_EQ(summary.solved, 0);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("rejected: batch deadline exhausted"),
              std::string::npos);
  }
}

TEST(BatchRunnerTest, QueueAdmissionStillSolvesUnderADryPool) {
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(5);
  const std::string input = Line(g) + "\n" + Line(g) + "\n";

  BatchRunner::Options options;
  options.batch_deadline_ms = 0;
  options.admission = BatchRunner::Admission::kQueue;
  options.clock = clock.AsFunction();
  BatchRunner::Summary summary;
  const std::vector<std::string> lines = RunBatch(input, options, &summary);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(summary.solved, 2);
  EXPECT_EQ(summary.rejected, 0);
  // Degraded, but every line still carries a verified scheme.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"edge_order\""), std::string::npos);
  }
}

TEST(BatchRunnerTest, PoolDrainsMidBatchUnderReject) {
  // 30ms pool, one 20ms tick per solved line: the third line finds the
  // pool dry and is rejected while the first two solved.
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(4);
  const std::string input = Line(g) + "\n" + Line(g) + "\n" + Line(g) + "\n";

  BatchRunner::Options options;
  options.batch_deadline_ms = 30;
  options.admission = BatchRunner::Admission::kReject;
  options.block_lines = 1;  // admission decided line by line
  options.clock = [&clock] {
    const int64_t now = clock.NowMs();
    clock.AdvanceMs(20);
    return now;
  };
  BatchRunner::Summary summary;
  const std::vector<std::string> lines = RunBatch(input, options, &summary);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(summary.solved + summary.rejected, 3);
  EXPECT_GE(summary.solved, 1);
  EXPECT_GE(summary.rejected, 1);
  EXPECT_NE(lines[2].find("rejected"), std::string::npos);
}

TEST(BatchRunnerTest, ProgressReportsArePinnedUnderAFakeClock) {
  // Frozen clock, one-line blocks, cadence 0: one deterministic progress
  // line after every block, byte-for-byte.
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(4);
  const std::string input = Line(g) + "\n\n" + Line(g) + "\n" + Line(g);

  BatchRunner::Options options;
  options.clock = clock.AsFunction();
  options.block_lines = 1;
  options.progress_every_ms = 0;
  options.expected_lines = 3;
  std::ostringstream progress;
  options.progress = &progress;

  BatchRunner::Summary summary;
  RunBatch(input, options, &summary);
  EXPECT_EQ(summary.solved, 3);
  EXPECT_EQ(
      progress.str(),
      "batch: 1/3 solved=1 errors=0 rejected=0 degraded=0 p50=0ms p95=0ms"
      " eta=0ms\n"
      "batch: 2/3 solved=2 errors=0 rejected=0 degraded=0 p50=0ms p95=0ms"
      " eta=0ms\n"
      "batch: 3/3 solved=3 errors=0 rejected=0 degraded=0 p50=0ms p95=0ms"
      " eta=0ms\n");
  // The frozen clock makes every latency 0 and the percentiles with it.
  EXPECT_EQ(summary.latency_p50_ms, 0);
  EXPECT_EQ(summary.latency_p95_ms, 0);
  EXPECT_EQ(summary.latency_p99_ms, 0);
}

TEST(BatchRunnerTest, ProgressCadenceFollowsTheClock) {
  // A frozen clock never accumulates the 100ms cadence, so a positive
  // cadence on it produces no reports at all — the cadence runs on the
  // injected clock, not on wall time or block count.
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(4);
  std::string input;
  for (int i = 0; i < 5; ++i) input += Line(g) + "\n";

  BatchRunner::Options options;
  options.clock = clock.AsFunction();
  options.block_lines = 1;
  options.progress_every_ms = 100;
  std::ostringstream progress;
  options.progress = &progress;

  BatchRunner::Summary summary;
  RunBatch(input, options, &summary);
  EXPECT_EQ(summary.solved, 5);
  EXPECT_EQ(progress.str(), "");
}

TEST(BatchRunnerTest, SummaryLatencyPercentilesAreExact) {
  // Latencies 10, 20, 30ms via a clock advancing a growing step per line.
  FakeClock clock;
  const BipartiteGraph g = WorstCaseFamily(4);
  const std::string input = Line(g) + "\n" + Line(g) + "\n" + Line(g) + "\n";

  BatchRunner::Options options;
  options.block_lines = 1;
  int64_t reads = 0;
  options.clock = [&clock, &reads] {
    const int64_t now = clock.NowMs();
    // Reads: batch start, then per line start/end. Advance only between a
    // line's start and end read: 10ms for line 1, 20 for line 2, ...
    if (reads >= 1 && reads % 2 == 1) clock.AdvanceMs(10 * ((reads + 1) / 2));
    ++reads;
    return now;
  };
  BatchRunner::Summary summary;
  RunBatch(input, options, &summary);
  EXPECT_EQ(summary.latency_p50_ms, 20);
  EXPECT_EQ(summary.latency_p95_ms, 30);
  EXPECT_EQ(summary.latency_p99_ms, 30);
}

}  // namespace
}  // namespace pebblejoin
