#include "graph/graph.h"

#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, AddEdgeAssignsSequentialIds) {
  Graph g(4);
  EXPECT_EQ(g.AddEdge(0, 1), 0);
  EXPECT_EQ(g.AddEdge(1, 2), 1);
  EXPECT_EQ(g.AddEdge(2, 3), 2);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(GraphTest, EdgeEndpointsStored) {
  Graph g(3);
  g.AddEdge(2, 0);
  EXPECT_EQ(g.edge(0).u, 2);
  EXPECT_EQ(g.edge(0).v, 0);
}

TEST(GraphTest, EdgeOther) {
  Graph g(3);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.edge(0).Other(0), 2);
  EXPECT_EQ(g.edge(0).Other(2), 0);
}

TEST(GraphDeathTest, EdgeOtherRejectsNonEndpoint) {
  Graph g(3);
  g.AddEdge(0, 2);
  EXPECT_DEATH(g.edge(0).Other(1), "JP_CHECK");
}

TEST(GraphTest, EdgeTouches) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_TRUE(g.edge(0).Touches(g.edge(1)));
  EXPECT_FALSE(g.edge(0).Touches(g.edge(2)));
  EXPECT_TRUE(g.edge(0).Touches(g.edge(0)));
}

TEST(GraphTest, DegreeAndIncidence) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.IncidentEdges(0).size(), 3u);
  EXPECT_EQ(g.IncidentEdges(0)[1], 1);
}

TEST(GraphTest, Neighbors) {
  Graph g(4);
  g.AddEdge(1, 0);
  g.AddEdge(1, 3);
  EXPECT_EQ(g.Neighbors(1), (std::vector<int>{0, 3}));
  EXPECT_EQ(g.Neighbors(2), std::vector<int>{});
}

TEST(GraphTest, HasEdgeAndFindEdgeSymmetric) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.FindEdge(1, 0), 0);
  EXPECT_EQ(g.FindEdge(2, 0), -1);
}

TEST(GraphDeathTest, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_DEATH(g.AddEdge(1, 1), "self-loops");
}

TEST(GraphDeathTest, RejectsParallelEdge) {
  Graph g(2);
  g.AddEdge(0, 1);
  EXPECT_DEATH(g.AddEdge(1, 0), "parallel");
}

TEST(GraphDeathTest, RejectsOutOfRangeVertex) {
  Graph g(2);
  EXPECT_DEATH(g.AddEdge(0, 2), "JP_CHECK");
}

TEST(GraphTest, AddVerticesExtends) {
  Graph g(2);
  EXPECT_EQ(g.AddVertices(3), 2);
  EXPECT_EQ(g.num_vertices(), 5);
  g.AddEdge(0, 4);
  EXPECT_TRUE(g.HasEdge(0, 4));
}

TEST(GraphTest, DebugStringListsEdges) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.DebugString(), "Graph(3 vertices): 0-1 1-2");
}

TEST(BipartiteGraphTest, SizesAndEdges) {
  BipartiteGraph g(2, 3);
  EXPECT_EQ(g.left_size(), 2);
  EXPECT_EQ(g.right_size(), 3);
  EXPECT_EQ(g.AddEdge(0, 2), 0);
  EXPECT_EQ(g.AddEdge(1, 0), 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(0).left, 0);
  EXPECT_EQ(g.edge(0).right, 2);
}

TEST(BipartiteGraphTest, HasEdge) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(BipartiteGraphDeathTest, RejectsDuplicateEdge) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 1);
  EXPECT_DEATH(g.AddEdge(0, 1), "parallel");
}

TEST(BipartiteGraphTest, DegreesAndAdjacency) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.LeftDegree(0), 2);
  EXPECT_EQ(g.LeftDegree(1), 1);
  EXPECT_EQ(g.RightDegree(1), 2);
  EXPECT_EQ(g.LeftAdjacency(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.RightAdjacency(1), (std::vector<int>{0, 1}));
}

TEST(BipartiteGraphTest, ToGraphPreservesIdsAndStructure) {
  BipartiteGraph g(2, 3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 0);
  const Graph flat = g.ToGraph();
  EXPECT_EQ(flat.num_vertices(), 5);
  EXPECT_EQ(flat.num_edges(), 2);
  // Edge 0 joins left 0 (flat id 0) with right 2 (flat id 2 + 2 = 4).
  EXPECT_EQ(flat.edge(0).u, g.FlatLeftId(0));
  EXPECT_EQ(flat.edge(0).v, g.FlatRightId(2));
  EXPECT_EQ(flat.edge(1).u, g.FlatLeftId(1));
  EXPECT_EQ(flat.edge(1).v, g.FlatRightId(0));
}

TEST(BipartiteGraphTest, SameEdgeSetIgnoresInsertionOrder) {
  BipartiteGraph a(2, 2);
  a.AddEdge(0, 0);
  a.AddEdge(1, 1);
  BipartiteGraph b(2, 2);
  b.AddEdge(1, 1);
  b.AddEdge(0, 0);
  EXPECT_TRUE(a.SameEdgeSet(b));
}

TEST(BipartiteGraphTest, SameEdgeSetDetectsDifferences) {
  BipartiteGraph a(2, 2);
  a.AddEdge(0, 0);
  BipartiteGraph b(2, 2);
  b.AddEdge(0, 1);
  EXPECT_FALSE(a.SameEdgeSet(b));
  BipartiteGraph c(3, 2);
  c.AddEdge(0, 0);
  EXPECT_FALSE(a.SameEdgeSet(c));
}

}  // namespace
}  // namespace pebblejoin
