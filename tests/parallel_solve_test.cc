// Parallel per-component solving: the determinism contract (byte-identical
// output for every thread count), cancellation propagation across worker
// slices, deterministic stats merging, worker-tagged traces, and the
// FallbackPebbler's speculative rung racing. Runs under ThreadSanitizer in
// CI (ctest -L tsan).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/report.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "obs/trace.h"
#include "pebble/scheme_verifier.h"
#include "solver/component_pebbler.h"
#include "solver/fallback_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/ils_pebbler.h"
#include "util/budget.h"

#include "json_test_util.h"

namespace pebblejoin {
namespace {

// A join graph with many heterogeneous components: random connected blobs,
// an equijoin block, a star, a cycle, and a worst-case family member.
BipartiteGraph ManyComponentGraph() {
  BipartiteGraph g = RandomConnectedBipartite(4, 4, 10, /*seed=*/11);
  g = DisjointUnion(g, CompleteBipartite(3, 3));
  g = DisjointUnion(g, RandomConnectedBipartite(5, 3, 9, /*seed=*/12));
  g = DisjointUnion(g, StarGraph(6));
  g = DisjointUnion(g, WorstCaseFamily(3));
  g = DisjointUnion(g, EvenCycle(4));
  g = DisjointUnion(g, RandomConnectedBipartite(3, 5, 8, /*seed=*/13));
  g = DisjointUnion(g, PathGraph(7));
  return g;
}

JoinAnalysis AnalyzeWithThreads(const BipartiteGraph& g, int threads) {
  AnalyzerOptions options;
  options.solver = SolverChoice::kIls;
  options.threads = threads;
  const JoinAnalyzer analyzer(options);
  return analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral);
}

TEST(ParallelDeterminismTest, IdenticalOutputAcrossThreadCounts) {
  const BipartiteGraph g = ManyComponentGraph();
  const JoinAnalysis base = AnalyzeWithThreads(g, 1);
  ASSERT_GE(base.solution.num_components, 8);
  const std::string base_json = NormalizeTimings(AnalysisJson(base));
  const std::string base_text = FormatAnalysis(base);

  for (int threads : {2, 8}) {
    const JoinAnalysis run = AnalyzeWithThreads(g, threads);
    // The scheme itself: same edge order, bit for bit.
    EXPECT_EQ(run.solution.edge_order, base.solution.edge_order)
        << "threads=" << threads;
    EXPECT_EQ(run.solution.hat_cost, base.solution.hat_cost);
    EXPECT_EQ(run.solution.effective_cost, base.solution.effective_cost);
    EXPECT_EQ(run.solution.jumps, base.solution.jumps);
    EXPECT_EQ(run.solution.solver_used, base.solution.solver_used);
    // Rendered surfaces: the human report and the JSON (timings zeroed)
    // must be byte-identical.
    EXPECT_EQ(FormatAnalysis(run), base_text) << "threads=" << threads;
    EXPECT_EQ(NormalizeTimings(AnalysisJson(run)), base_json)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, FallbackLadderIdenticalAcrossThreadCounts) {
  // Same contract with the full degradation ladder as the per-component
  // primary (exact wins on the small components, heuristics on the rest).
  const BipartiteGraph g = ManyComponentGraph();
  AnalyzerOptions options;
  options.solver = SolverChoice::kFallback;
  options.threads = 1;
  const JoinAnalysis base =
      JoinAnalyzer(options).AnalyzeJoinGraph(g, PredicateClass::kGeneral);
  options.threads = 8;
  const JoinAnalysis wide =
      JoinAnalyzer(options).AnalyzeJoinGraph(g, PredicateClass::kGeneral);
  EXPECT_EQ(wide.solution.edge_order, base.solution.edge_order);
  EXPECT_EQ(wide.solution.solver_used, base.solution.solver_used);
  EXPECT_EQ(NormalizeTimings(AnalysisJson(wide)),
            NormalizeTimings(AnalysisJson(base)));
}

TEST(ParallelDeterminismTest, StatsMergeIdenticalAcrossThreadCounts) {
  // The merged per-component counters, not just the scheme: sequential and
  // parallel runs must aggregate the same SolveStats (satellite of the
  // determinism contract — one shared merge path).
  const Graph flat = ManyComponentGraph().ToGraph();
  const IlsPebbler ils;
  const GreedyWalkPebbler greedy;

  SolveStats stats[2];
  for (int i = 0; i < 2; ++i) {
    ComponentPebbler::Options options;
    options.threads = i == 0 ? 1 : 4;
    const ComponentPebbler driver(&ils, &greedy, options);
    BudgetContext ctx{SolveBudget{}};
    ctx.set_stats(&stats[i]);
    (void)driver.Solve(flat, &ctx);
  }
  EXPECT_EQ(stats[0].ls_passes, stats[1].ls_passes);
  EXPECT_EQ(stats[0].ls_moves_accepted, stats[1].ls_moves_accepted);
  EXPECT_EQ(stats[0].ils_iterations, stats[1].ils_iterations);
  EXPECT_EQ(stats[0].ils_kicks_accepted, stats[1].ils_kicks_accepted);
  EXPECT_EQ(stats[0].rungs_attempted, stats[1].rungs_attempted);
  EXPECT_EQ(stats[0].rungs_declined, stats[1].rungs_declined);
  EXPECT_EQ(stats[0].bnb_nodes_expanded, stats[1].bnb_nodes_expanded);
  EXPECT_EQ(stats[0].hk_solves, stats[1].hk_solves);
}

TEST(ParallelBudgetTest, ForcedExpiryMidFanOutStaysCoherent) {
  // Fault injection across the fan-out: the parent's forced-expiry point
  // moves onto the shared state, so whichever worker polls next latches the
  // deadline and every sibling slice adopts it. The request must still end
  // with a verified scheme, full provenance, and fully merged stats.
  const Graph flat = ManyComponentGraph().ToGraph();
  const IlsPebbler ils;
  const GreedyWalkPebbler greedy;
  ComponentPebbler::Options options;
  options.threads = 4;
  const ComponentPebbler driver(&ils, &greedy, options);

  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 1'000'000;  // present but never reached by the clock
  BudgetContext ctx(budget, clock.AsFunction());
  SolveStats stats;
  ctx.set_stats(&stats);
  ctx.ForceExpireAfterPolls(64);

  const PebbleSolution solution = driver.Solve(flat, &ctx);

  // No lost cancellation: the forced expiry latched on the parent after the
  // merge, with the deadline reason.
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kDeadlineExpired);
  EXPECT_GE(ctx.polls(), 64);

  // Coherent output: a valid scheme covering every edge, one provenance
  // entry per component, and each component answered by the primary or the
  // unbudgeted fallback — never nothing.
  const VerificationResult verdict = VerifyEdgeOrder(flat, solution.edge_order);
  ASSERT_TRUE(verdict.valid) << verdict.error;
  EXPECT_EQ(verdict.effective_cost, solution.effective_cost);
  ASSERT_EQ(static_cast<int>(solution.outcomes.size()),
            solution.num_components);
  int64_t attempts = 0;
  for (int c = 0; c < solution.num_components; ++c) {
    EXPECT_FALSE(solution.outcomes[c].attempts.empty()) << "component " << c;
    EXPECT_GE(solution.outcomes[c].effective_cost,
              solution.outcomes[c].lower_bound);
    EXPECT_TRUE(solution.solver_used[c] == "ils" ||
                solution.solver_used[c] == "greedy-walk")
        << solution.solver_used[c];
    attempts += static_cast<int64_t>(solution.outcomes[c].attempts.size());
  }
  // No partially merged stats: the ladder counter equals the attempts the
  // outcomes report, so every per-component sink was folded exactly once.
  EXPECT_EQ(stats.rungs_attempted, attempts);
}

TEST(ParallelBudgetTest, AlreadyExpiredDeadlineCancelsEveryWorker) {
  // A deadline of zero: every slice latches on its first poll, every
  // component falls through to the unbudgeted fallback, and the scheme is
  // still valid — budgets shape quality, never success.
  const Graph flat = ManyComponentGraph().ToGraph();
  const IlsPebbler ils;
  const GreedyWalkPebbler greedy;
  ComponentPebbler::Options options;
  options.threads = 8;
  const ComponentPebbler driver(&ils, &greedy, options);

  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  BudgetContext ctx(budget, clock.AsFunction());

  const PebbleSolution solution = driver.Solve(flat, &ctx);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kDeadlineExpired);
  EXPECT_TRUE(VerifyEdgeOrder(flat, solution.edge_order).valid);
  for (const std::string& used : solution.solver_used) {
    EXPECT_EQ(used, "greedy-walk");
  }
}

TEST(ParallelTraceTest, WorkerTagsOnComponentSpans) {
  const BipartiteGraph g = ManyComponentGraph();
  AnalyzerOptions options;
  options.solver = SolverChoice::kIls;
  options.threads = 4;
  TraceSession trace;
  options.trace = &trace;
  const JoinAnalyzer analyzer(options);
  (void)analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"component\""), std::string::npos);
  // Every merged worker event carries the worker tag; under threads=4 at
  // least the component spans have it.
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
}

TEST(SpeculativeLadderTest, RaceMatchesSequentialWinnerAndCost) {
  // One small connected component: the exact rung wins both sequentially
  // and in the race (ladder order is the racing priority), so the order,
  // winner, and optimality claim must agree.
  const Graph g = RandomConnectedBipartite(3, 3, 7, /*seed=*/5).ToGraph();

  FallbackPebbler::Options sequential_options;
  const FallbackPebbler sequential(sequential_options);
  FallbackPebbler::Options racing_options;
  racing_options.speculative_threads = 4;
  const FallbackPebbler racing(racing_options);

  BudgetContext seq_ctx{SolveBudget{}};
  SolveOutcome seq_outcome;
  const auto seq_order = sequential.PebbleWithOutcome(g, &seq_ctx, &seq_outcome);
  ASSERT_TRUE(seq_order.has_value());

  BudgetContext race_ctx{SolveBudget{}};
  SolveOutcome race_outcome;
  const auto race_order = racing.PebbleWithOutcome(g, &race_ctx, &race_outcome);
  ASSERT_TRUE(race_order.has_value());

  EXPECT_EQ(*race_order, *seq_order);
  EXPECT_EQ(race_outcome.winner, seq_outcome.winner);
  EXPECT_EQ(race_outcome.winner, "exact");
  EXPECT_EQ(race_outcome.effective_cost, seq_outcome.effective_cost);
  EXPECT_TRUE(race_outcome.optimal);
  // The race honestly records every racing rung (the sequential ladder
  // stops at the first producer, so it may record fewer).
  EXPECT_EQ(race_outcome.attempts.size(), 3u);
  EXPECT_TRUE(VerifyEdgeOrder(g, *race_order).valid);
}

TEST(SpeculativeLadderTest, RaceIsDeterministicAcrossRuns) {
  const Graph g = RandomConnectedBipartite(4, 4, 11, /*seed=*/6).ToGraph();
  FallbackPebbler::Options options;
  options.speculative_threads = 3;
  const FallbackPebbler racing(options);

  std::vector<int> first;
  for (int run = 0; run < 3; ++run) {
    BudgetContext ctx{SolveBudget{}};
    SolveOutcome outcome;
    const auto order = racing.PebbleWithOutcome(g, &ctx, &outcome);
    ASSERT_TRUE(order.has_value());
    if (run == 0) {
      first = *order;
    } else {
      EXPECT_EQ(*order, first) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace pebblejoin
