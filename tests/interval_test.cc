#include "join/interval.h"

#include "core/analyzer.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"

namespace pebblejoin {
namespace {

TEST(IntervalTest, OverlapSemantics) {
  const Interval a{0, 2};
  const Interval b{2, 4};   // touching
  const Interval c{5, 6};
  const Interval point{1, 1};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(a.Overlaps(point));
  EXPECT_FALSE(c.Overlaps(point));
}

TEST(IntervalBuilderTest, MatchesNestedLoop) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    IntervalWorkloadOptions options;
    options.num_left = 40;
    options.num_right = 40;
    options.space = 60;
    options.min_length = 1;
    options.max_length = 6;
    options.seed = seed;
    const IntervalRealization w = GenerateIntervalWorkload(options);
    const BipartiteGraph fast =
        BuildIntervalOverlapJoinGraph(w.left, w.right);
    const BipartiteGraph slow =
        BuildJoinGraphNestedLoop(w.left, w.right,
                                 IntervalOverlapPredicate());
    EXPECT_TRUE(fast.SameEdgeSet(slow)) << seed;
  }
}

TEST(IntervalBuilderTest, TouchingEndpointsJoin) {
  IntervalRelation r("R");
  r.Add(Interval{0, 1});
  IntervalRelation s("S");
  s.Add(Interval{1, 2});
  EXPECT_EQ(BuildIntervalOverlapJoinGraph(r, s).num_edges(), 1);
}

TEST(IntervalBuilderTest, PointIntervalsActAsEquijoin) {
  // Zero-length intervals at integer positions == equality on the key.
  IntervalRelation r("R");
  IntervalRelation s("S");
  for (int k : {1, 2, 2, 5}) r.Add(Interval{1.0 * k, 1.0 * k});
  for (int k : {2, 5, 7}) s.Add(Interval{1.0 * k, 1.0 * k});
  const BipartiteGraph g = BuildIntervalOverlapJoinGraph(r, s);
  EXPECT_EQ(g.num_edges(), 3);  // two 2s match one 2; one 5 matches one 5
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_TRUE(g.HasEdge(3, 1));
}

// The hub/spoke/private structure of the worst-case family cannot be built
// from 1-D intervals: if the hub overlaps all n pairwise-disjoint spokes,
// at least n − 2 spokes lie strictly inside it, and a private cell
// overlapping an inside spoke must hit the hub too. Checked by brute force
// on the smallest family member over a discretized candidate space.
TEST(IntervalLimitTest, WorstCaseFamilyNotRealizableDiscretized) {
  // Candidate endpoints on a coarse grid; try to realize G_3: hub h,
  // privates p1..p3, spokes s1..s3 with join graph == WorstCaseFamily(3).
  // Instead of searching (expensive), verify the structural obstruction:
  // for all interval choices where hub overlaps 3 pairwise-disjoint
  // spokes, any interval overlapping the middle spoke overlaps the hub.
  const double grid = 8;
  for (double h_lo = 0; h_lo < grid; ++h_lo) {
    for (double h_hi = h_lo; h_hi < grid; ++h_hi) {
      const Interval hub{h_lo, h_hi};
      // Three disjoint spokes inside/overlapping the hub, middle strictly
      // between the others.
      const Interval s1{h_lo, h_lo};            // touches left end
      const Interval s3{h_hi, h_hi};            // touches right end
      if (h_hi - h_lo < 2) continue;
      const Interval s2{(h_lo + h_hi) / 2, (h_lo + h_hi) / 2};
      ASSERT_TRUE(hub.Overlaps(s2));
      // Any private cell overlapping s2 contains a point of [h_lo, h_hi].
      for (double p_lo = 0; p_lo < grid; p_lo += 0.5) {
        for (double p_hi = p_lo; p_hi < grid; p_hi += 0.5) {
          const Interval privately{p_lo, p_hi};
          if (privately.Overlaps(s2)) {
            EXPECT_TRUE(privately.Overlaps(hub));
          }
        }
      }
      (void)s1;
      (void)s3;
    }
  }
}

TEST(IntervalComplexityTest, IntervalJoinsPebbleNearPerfectly) {
  // Empirical position between equijoin and 2-D spatial: interval-overlap
  // join graphs are overwhelmingly perfect under the standard solvers.
  const JoinAnalyzer analyzer;
  int perfect = 0;
  int nonempty = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    IntervalWorkloadOptions options;
    options.num_left = 30;
    options.num_right = 30;
    options.space = 40;
    options.seed = seed;
    const IntervalRealization w = GenerateIntervalWorkload(options);
    const BipartiteGraph g = BuildIntervalOverlapJoinGraph(w.left, w.right);
    if (g.num_edges() == 0) continue;
    ++nonempty;
    const JoinAnalysis a =
        analyzer.AnalyzeJoinGraph(g, PredicateClass::kSpatialOverlap);
    if (a.perfect) ++perfect;
    EXPECT_LE(a.cost_ratio, 1.1) << seed;  // never anywhere near 1.25
  }
  EXPECT_GT(nonempty, 8);
  EXPECT_GE(perfect, 2);  // perfection is common, unlike the 2-D worst case
}

}  // namespace
}  // namespace pebblejoin
