// Admission-control units shared by `pebblejoin batch` and `pebblejoin
// serve`: the aggregate deadline pool (clamp-or-shed semantics at explicit
// clock readings), the per-request deadline ceiling, and the bounded
// in-flight limiter with its two shed reasons.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/admission.h"
#include "util/budget.h"

namespace pebblejoin {
namespace {

TEST(DeadlineAdmissionTest, UnlimitedPoolAdmitsEverythingUntouched) {
  const DeadlineAdmission pool(-1, AdmissionPolicy::kReject, /*start_ms=*/0);
  EXPECT_TRUE(pool.unlimited());

  SolveBudget budget;
  budget.deadline_ms = 1234;
  EXPECT_TRUE(pool.Admit(/*now_ms=*/1000000, &budget));
  EXPECT_EQ(budget.deadline_ms, 1234);

  SolveBudget bare;
  EXPECT_TRUE(pool.Admit(/*now_ms=*/1000000, &bare));
  EXPECT_FALSE(bare.has_deadline());
}

TEST(DeadlineAdmissionTest, RemainingMsCountsDownAndClampsAtZero) {
  const DeadlineAdmission pool(100, AdmissionPolicy::kQueue, /*start_ms=*/50);
  EXPECT_EQ(pool.RemainingMs(50), 100);
  EXPECT_EQ(pool.RemainingMs(120), 30);
  EXPECT_EQ(pool.RemainingMs(150), 0);
  EXPECT_EQ(pool.RemainingMs(10000), 0);  // never negative
}

TEST(DeadlineAdmissionTest, AdmitClampsDeadlineToTheRemainder) {
  const DeadlineAdmission pool(100, AdmissionPolicy::kReject, /*start_ms=*/0);

  // 60 ms in: 40 ms remain. A looser request deadline is clamped down...
  SolveBudget loose;
  loose.deadline_ms = 500;
  EXPECT_TRUE(pool.Admit(/*now_ms=*/60, &loose));
  EXPECT_EQ(loose.deadline_ms, 40);

  // ...a tighter one is kept...
  SolveBudget tight;
  tight.deadline_ms = 10;
  EXPECT_TRUE(pool.Admit(/*now_ms=*/60, &tight));
  EXPECT_EQ(tight.deadline_ms, 10);

  // ...and a request with no deadline inherits the remainder outright.
  SolveBudget bare;
  EXPECT_TRUE(pool.Admit(/*now_ms=*/60, &bare));
  EXPECT_EQ(bare.deadline_ms, 40);
}

TEST(DeadlineAdmissionTest, DryPoolShedsUnderRejectAndQueuesAtZeroUnderQueue) {
  SolveBudget budget;
  budget.deadline_ms = 500;

  const DeadlineAdmission reject(100, AdmissionPolicy::kReject, /*start=*/0);
  EXPECT_FALSE(reject.Admit(/*now_ms=*/100, &budget));
  EXPECT_EQ(budget.deadline_ms, 500) << "rejected budgets stay untouched";

  const DeadlineAdmission queue(100, AdmissionPolicy::kQueue, /*start=*/0);
  EXPECT_TRUE(queue.Admit(/*now_ms=*/100, &budget));
  EXPECT_EQ(budget.deadline_ms, 0)
      << "kQueue admits with a zero deadline (fallback ladder still runs)";
}

TEST(ClampDeadlineTest, CapsLooseDeadlinesAndFillsMissingOnes) {
  SolveBudget loose;
  loose.deadline_ms = 60000;
  ClampDeadline(&loose, 1000);
  EXPECT_EQ(loose.deadline_ms, 1000);

  SolveBudget tight;
  tight.deadline_ms = 5;
  ClampDeadline(&tight, 1000);
  EXPECT_EQ(tight.deadline_ms, 5);

  SolveBudget bare;
  ClampDeadline(&bare, 1000);
  EXPECT_EQ(bare.deadline_ms, 1000)
      << "an uncapped request gets exactly the ceiling";

  SolveBudget untouched;
  untouched.deadline_ms = 60000;
  ClampDeadline(&untouched, -1);
  EXPECT_EQ(untouched.deadline_ms, 60000) << "negative cap = no clamp";
}

TEST(InflightLimiterTest, TotalCeilingShedsWithTheOverloadReason) {
  InflightLimiter limiter(/*max_total=*/2, /*max_per_client=*/0);
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/1));
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/2));
  EXPECT_EQ(limiter.in_flight(), 2);

  const char* denied_by = nullptr;
  EXPECT_FALSE(limiter.TryAcquire(/*client_id=*/3, &denied_by));
  ASSERT_NE(denied_by, nullptr);
  EXPECT_EQ(std::string(denied_by), "server overloaded");

  limiter.Release(/*client_id=*/1);
  EXPECT_EQ(limiter.in_flight(), 1);
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/3));
}

TEST(InflightLimiterTest, PerClientCeilingShedsOnlyThatClient) {
  InflightLimiter limiter(/*max_total=*/0, /*max_per_client=*/2);
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/7));
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/7));

  const char* denied_by = nullptr;
  EXPECT_FALSE(limiter.TryAcquire(/*client_id=*/7, &denied_by));
  ASSERT_NE(denied_by, nullptr);
  EXPECT_EQ(std::string(denied_by), "per-connection in-flight cap");

  // Another client is unaffected by the first one's ceiling.
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/8));
  EXPECT_EQ(limiter.in_flight(), 3);

  limiter.Release(/*client_id=*/7);
  EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/7));
}

TEST(InflightLimiterTest, UnlimitedDimensionsNeverShed) {
  InflightLimiter limiter(/*max_total=*/0, /*max_per_client=*/0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.TryAcquire(/*client_id=*/i % 3));
  }
  EXPECT_EQ(limiter.in_flight(), 100);
}

TEST(InflightLimiterTest, ReleaseForgetsDrainedClients) {
  InflightLimiter limiter(/*max_total=*/0, /*max_per_client=*/1);
  // Churn through many distinct client ids; each releases its slot, so the
  // per-client map must not retain an entry (and thus a ceiling) per id.
  for (int64_t id = 0; id < 64; ++id) {
    EXPECT_TRUE(limiter.TryAcquire(id));
    limiter.Release(id);
  }
  EXPECT_EQ(limiter.in_flight(), 0);
  // Every one of them can come back.
  for (int64_t id = 0; id < 64; ++id) {
    EXPECT_TRUE(limiter.TryAcquire(id));
  }
}

TEST(InflightLimiterTest, ConcurrentAcquireNeverOverAdmits) {
  InflightLimiter limiter(/*max_total=*/8, /*max_per_client=*/0);
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&limiter, &admitted, t] {
      for (int i = 0; i < 1000; ++i) {
        if (limiter.TryAcquire(/*client_id=*/t)) {
          const int now = admitted.fetch_add(1) + 1;
          EXPECT_LE(now, 8);
          admitted.fetch_sub(1);
          limiter.Release(/*client_id=*/t);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(limiter.in_flight(), 0);
}

}  // namespace
}  // namespace pebblejoin
