#include "partition/partitioner.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"

namespace pebblejoin {
namespace {

TEST(CountTouchedPairsTest, CountsDistinctFragmentPairs) {
  const BipartiteGraph g = MatchingGraph(4);
  JoinPartition partition;
  partition.p = 2;
  partition.q = 2;
  partition.left_fragment = {0, 0, 1, 1};
  partition.right_fragment = {0, 0, 1, 1};
  EXPECT_EQ(CountTouchedPairs(g, partition), 2);  // (0,0) and (1,1)
  partition.right_fragment = {1, 1, 0, 0};
  EXPECT_EQ(CountTouchedPairs(g, partition), 2);  // (0,1) and (1,0)
  partition.right_fragment = {0, 1, 0, 1};
  EXPECT_EQ(CountTouchedPairs(g, partition), 4);  // all pairs
}

TEST(CountTouchedPairsTest, MatchesNaiveMarkingOnRandomPartitions) {
  // Differential check of the word-packed Bitset fast path against the
  // obvious mark-and-count loop it replaced, over random graphs and
  // random (not necessarily balanced) assignments, including grids wide
  // enough to cross the 64-bit word boundary.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const BipartiteGraph g = RandomBipartite(9, 11, 0.3, seed);
    JoinPartition partition;
    partition.p = 3 + static_cast<int>(seed % 8);   // up to 10x13 = 130
    partition.q = 5 + static_cast<int>(seed % 9);   // cells: > one word
    uint64_t state = seed * 2654435761u;
    const auto next = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 33;
    };
    for (int l = 0; l < g.left_size(); ++l) {
      partition.left_fragment.push_back(
          static_cast<int>(next() % partition.p));
    }
    for (int r = 0; r < g.right_size(); ++r) {
      partition.right_fragment.push_back(
          static_cast<int>(next() % partition.q));
    }
    std::vector<bool> touched(
        static_cast<size_t>(partition.p) * partition.q, false);
    int64_t naive = 0;
    for (const BipartiteGraph::Edge& e : g.edges()) {
      const size_t cell =
          static_cast<size_t>(partition.left_fragment[e.left]) *
              partition.q +
          partition.right_fragment[e.right];
      if (!touched[cell]) {
        touched[cell] = true;
        ++naive;
      }
    }
    EXPECT_EQ(CountTouchedPairs(g, partition), naive) << "seed " << seed;
  }
}

TEST(TouchedPairsLowerBoundTest, VolumeAndDegreeArguments) {
  // K_{4,4}, p=q=2 (caps 2x2 = 4 edges per pair): >= 16/4 = 4.
  EXPECT_EQ(TouchedPairsLowerBound(CompleteBipartite(4, 4), 2, 2), 4);
  // A star K_{1,8} with q=4: the center's 8 neighbors spread over >= 4
  // right fragments.
  EXPECT_GE(TouchedPairsLowerBound(StarGraph(8), 2, 4), 4);
  // Empty graph: zero.
  EXPECT_EQ(TouchedPairsLowerBound(BipartiteGraph(3, 3), 2, 2), 0);
}

TEST(IsBalancedTest, CapacityChecks) {
  const BipartiteGraph g = MatchingGraph(4);
  JoinPartition partition;
  partition.p = partition.q = 2;
  partition.left_fragment = {0, 0, 1, 1};
  partition.right_fragment = {0, 1, 0, 1};
  EXPECT_TRUE(IsBalanced(g, partition));
  partition.left_fragment = {0, 0, 0, 1};  // fragment 0 over capacity 2
  EXPECT_FALSE(IsBalanced(g, partition));
}

TEST(RoundRobinTest, BalancedByConstruction) {
  const BipartiteGraph g = RandomBipartite(11, 13, 0.3, 3);
  const JoinPartition partition = RoundRobinPartition(g, 3, 4);
  EXPECT_TRUE(IsBalanced(g, partition));
}

TEST(GreedyComponentTest, EquijoinCoPartitioningIsOptimal) {
  // On an equijoin graph with blocks that fit, each component lands in one
  // fragment pair: touched pairs == number of fragments holding blocks,
  // which meets the per-component minimum (each component needs >= 1 pair;
  // components sharing a fragment pair share its count).
  EquijoinWorkloadOptions options;
  options.num_keys = 12;
  options.min_left_dup = options.max_left_dup = 2;
  options.min_right_dup = options.max_right_dup = 2;
  options.seed = 3;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  const BipartiteGraph g = BuildEquiJoinGraph(w.left, w.right);
  const int fragments = 4;
  const JoinPartition partition = GreedyComponentPartition(g, fragments);
  EXPECT_TRUE(IsBalanced(g, partition));
  // Every component whole => touched pairs <= fragments (only diagonal-ish
  // pairs used, one per fragment that holds components).
  EXPECT_LE(CountTouchedPairs(g, partition), fragments);
  // Round-robin is strictly worse on this workload.
  EXPECT_LT(CountTouchedPairs(g, partition),
            CountTouchedPairs(g, RoundRobinPartition(g, fragments,
                                                     fragments)));
}

TEST(GreedyComponentTest, HandlesOversizedComponents) {
  // One giant component larger than any fragment must be split but stay
  // balanced.
  const BipartiteGraph g = CompleteBipartite(8, 8);
  const JoinPartition partition = GreedyComponentPartition(g, 4);
  EXPECT_TRUE(IsBalanced(g, partition));
  EXPECT_GE(CountTouchedPairs(g, partition),
            TouchedPairsLowerBound(g, 4, 4));
}

TEST(GreedyComponentTest, IsolatedVerticesPlaced) {
  BipartiteGraph g(5, 5);
  g.AddEdge(0, 0);
  const JoinPartition partition = GreedyComponentPartition(g, 2);
  EXPECT_TRUE(IsBalanced(g, partition));
  for (int f : partition.left_fragment) EXPECT_NE(f, -1);
  for (int f : partition.right_fragment) EXPECT_NE(f, -1);
}

TEST(ExhaustiveTest, MatchesManualOptimumOnTinyInstances) {
  // Two disjoint edges, p=q=2: optimum is 2 touched pairs.
  const BipartiteGraph g = MatchingGraph(2);
  const auto best = ExhaustiveOptimalPartition(g, 2, 2);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(CountTouchedPairs(g, *best), 2);
  EXPECT_TRUE(IsBalanced(g, *best));
}

TEST(ExhaustiveTest, RefusesHugeSearchSpaces) {
  const BipartiteGraph g = RandomBipartite(20, 20, 0.2, 1);
  EXPECT_FALSE(ExhaustiveOptimalPartition(g, 3, 3, 1000).has_value());
}

TEST(ExhaustiveTest, GreedyNeverBeatsExhaustive) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const BipartiteGraph g = RandomBipartite(5, 5, 0.35, seed);
    const auto best = ExhaustiveOptimalPartition(g, 2, 2);
    ASSERT_TRUE(best.has_value());
    const JoinPartition greedy = GreedyComponentPartition(g, 2);
    EXPECT_LE(CountTouchedPairs(g, *best), CountTouchedPairs(g, greedy))
        << seed;
    EXPECT_GE(CountTouchedPairs(g, *best),
              TouchedPairsLowerBound(g, 2, 2))
        << seed;
  }
}

TEST(ExhaustiveTest, HardGraphNeedsManyPairs) {
  // The worst-case family's hub is adjacent to everything: its fragment
  // touches every right fragment that holds a spoke.
  const BipartiteGraph g = WorstCaseFamily(4);
  const auto best = ExhaustiveOptimalPartition(g, 2, 2);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(CountTouchedPairs(g, *best), 2);
}

}  // namespace
}  // namespace pebblejoin
