#include "paging/page_schedule.h"

#include "graph/generators.h"
#include "graph/graph_properties.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"
#include "pebble/scheme_verifier.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"

namespace pebblejoin {
namespace {

TEST(PageLayoutTest, SequentialShape) {
  const PageLayout layout = SequentialLayout(10, 4);
  EXPECT_EQ(layout.num_pages, 3);
  EXPECT_EQ(layout.page_of[0], 0);
  EXPECT_EQ(layout.page_of[3], 0);
  EXPECT_EQ(layout.page_of[4], 1);
  EXPECT_EQ(layout.page_of[9], 2);
  EXPECT_TRUE(IsValidLayout(layout, 10));
  EXPECT_EQ(layout.TuplesOnPage(1), (std::vector<int>{4, 5, 6, 7}));
}

TEST(PageLayoutTest, ExactFit) {
  const PageLayout layout = SequentialLayout(8, 4);
  EXPECT_EQ(layout.num_pages, 2);
}

TEST(PageLayoutTest, EmptyRelation) {
  const PageLayout layout = SequentialLayout(0, 4);
  EXPECT_EQ(layout.num_pages, 0);
  EXPECT_TRUE(IsValidLayout(layout, 0));
}

TEST(PageLayoutTest, RandomLayoutIsValidAndDeterministic) {
  const PageLayout a = RandomLayout(23, 5, 7);
  const PageLayout b = RandomLayout(23, 5, 7);
  EXPECT_TRUE(IsValidLayout(a, 23));
  EXPECT_EQ(a.page_of, b.page_of);
  EXPECT_EQ(a.num_pages, 5);
}

TEST(PageLayoutTest, RandomDiffersFromSequential) {
  const PageLayout random = RandomLayout(40, 5, 3);
  const PageLayout sequential = SequentialLayout(40, 5);
  EXPECT_NE(random.page_of, sequential.page_of);
}

TEST(IsValidLayoutTest, DetectsOverfullPages) {
  PageLayout layout;
  layout.num_pages = 2;
  layout.page_capacity = 1;
  layout.page_of = {0, 0, 1};
  EXPECT_FALSE(IsValidLayout(layout, 3));
  layout.page_of = {0, 1, 5};
  EXPECT_FALSE(IsValidLayout(layout, 3));
}

TEST(PageJoinGraphTest, CollapsesParallelPairs) {
  // Tuple join graph: K_{2,2} on tuples all mapping to one page pair.
  const BipartiteGraph tuples = CompleteBipartite(2, 2);
  const PageLayout left = SequentialLayout(2, 2);
  const PageLayout right = SequentialLayout(2, 2);
  const BipartiteGraph pages = BuildPageJoinGraph(tuples, left, right);
  EXPECT_EQ(pages.left_size(), 1);
  EXPECT_EQ(pages.right_size(), 1);
  EXPECT_EQ(pages.num_edges(), 1);
}

TEST(PageJoinGraphTest, PreservesCrossPageEdges) {
  const BipartiteGraph tuples = MatchingGraph(4);
  const PageLayout left = SequentialLayout(4, 2);   // pages {0,1},{2,3}
  const PageLayout right = SequentialLayout(4, 2);
  const BipartiteGraph pages = BuildPageJoinGraph(tuples, left, right);
  EXPECT_EQ(pages.num_edges(), 2);  // diagonal page pairs only
  EXPECT_TRUE(pages.HasEdge(0, 0));
  EXPECT_TRUE(pages.HasEdge(1, 1));
}

TEST(PageScheduleTest, FetchCountVerifiedAndBounded) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 30;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const BipartiteGraph tuples = BuildEquiJoinGraph(w.left, w.right);
    const PageLayout left = RandomLayout(tuples.left_size(), 4, seed);
    const PageLayout right = RandomLayout(tuples.right_size(), 4, seed + 1);
    const LocalSearchPebbler pebbler;
    const PageSchedule schedule =
        SchedulePageFetches(tuples, left, right, pebbler);
    EXPECT_TRUE(
        VerifyScheme(schedule.page_graph.ToGraph(), schedule.solution.scheme)
            .valid);
    EXPECT_GE(schedule.page_fetches, schedule.lower_bound);
    // Trivial upper bound: 2 fetches per page-pair (Lemma 2.1).
    EXPECT_LE(schedule.page_fetches, 2 * schedule.page_graph.num_edges());
  }
}

TEST(PageScheduleTest, SortedEquijoinLayoutIsNearOptimal) {
  // A sorted (clustered) layout of an equijoin keeps each key's block on
  // few page pairs; the page graph stays close to the equijoin shape and
  // the schedule close to its lower bound. The classic sort-merge story.
  EquijoinWorkloadOptions options;
  options.num_keys = 64;
  options.min_left_dup = options.max_left_dup = 2;
  options.min_right_dup = options.max_right_dup = 2;
  options.seed = 5;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  const BipartiteGraph tuples = BuildEquiJoinGraph(w.left, w.right);
  // Tuples are generated key-ordered, so sequential layout is clustered.
  const PageLayout left = SequentialLayout(tuples.left_size(), 2);
  const PageLayout right = SequentialLayout(tuples.right_size(), 2);
  const LocalSearchPebbler pebbler;
  const PageSchedule sorted =
      SchedulePageFetches(tuples, left, right, pebbler);

  const PageLayout left_r = RandomLayout(tuples.left_size(), 2, 99);
  const PageLayout right_r = RandomLayout(tuples.right_size(), 2, 98);
  const PageSchedule random =
      SchedulePageFetches(tuples, left_r, right_r, pebbler);

  // The clustered layout yields a smaller page join graph and fewer
  // fetches.
  EXPECT_LT(sorted.page_graph.num_edges(), random.page_graph.num_edges());
  EXPECT_LT(sorted.page_fetches, random.page_fetches);
}

TEST(PageScheduleTest, PageGraphOfWorstCaseFamilyStaysHard) {
  // With page capacity 1 the page graph IS the tuple graph: the paging
  // model strictly generalizes the tuple model.
  const BipartiteGraph g = WorstCaseFamily(6);
  const PageLayout left = SequentialLayout(g.left_size(), 1);
  const PageLayout right = SequentialLayout(g.right_size(), 1);
  const BipartiteGraph pages = BuildPageJoinGraph(g, left, right);
  EXPECT_TRUE(pages.SameEdgeSet(g));
}

}  // namespace
}  // namespace pebblejoin
