// SolveEngine: the long-lived-session contract. One engine serving many
// requests — sequential and concurrent — must produce exactly what a fresh
// engine per request produces (no state bleeding between requests), honor
// per-request overrides of the engine defaults, fill the staged pipeline
// timings, and publish metrics only into its own (or an injected)
// registry, never the process-global default.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "engine/solve_engine.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

#include "json_test_util.h"

namespace pebblejoin {
namespace {

std::vector<BipartiteGraph> TestWorkload() {
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(WorstCaseFamily(5));
  graphs.push_back(CompleteBipartite(3, 4));
  graphs.push_back(RandomConnectedBipartite(6, 6, 14, /*seed=*/3));
  graphs.push_back(DisjointUnion(StarGraph(5), EvenCycle(4)));
  graphs.push_back(RandomBipartiteWithEdges(5, 7, 11, /*seed=*/9));
  return graphs;
}

std::string SolveToJson(SolveEngine* engine, const BipartiteGraph& g,
                        PredicateClass predicate = PredicateClass::kGeneral) {
  SolveRequest request;
  request.graph = &g;
  request.predicate = predicate;
  return NormalizeTimings(AnalysisJson(engine->Solve(request).analysis));
}

TEST(SolveEngineTest, SequentialReuseMatchesFreshInstances) {
  // One engine across many requests == a fresh engine per request, byte
  // for byte (wall clocks normalized). This is the no-state-bleed
  // contract: nothing a request leaves behind may change the next result.
  const std::vector<BipartiteGraph> graphs = TestWorkload();
  SolveEngine shared;
  for (int round = 0; round < 2; ++round) {
    for (const BipartiteGraph& g : graphs) {
      SolveEngine fresh;
      EXPECT_EQ(SolveToJson(&shared, g), SolveToJson(&fresh, g))
          << "round " << round;
    }
  }
}

TEST(SolveEngineTest, StatsNeverBleedAcrossRequests) {
  // Per-request counters restart from zero: request N's stats are a
  // function of request N alone, not of the session history.
  SolveEngine engine;
  const BipartiteGraph g = RandomConnectedBipartite(6, 6, 14, /*seed=*/3);
  SolveRequest request;
  request.graph = &g;
  const SolveStats first = engine.Solve(request).analysis.stats;
  const SolveStats second = engine.Solve(request).analysis.stats;
  EXPECT_EQ(first.ls_passes, second.ls_passes);
  EXPECT_EQ(first.rungs_attempted, second.rungs_attempted);
  EXPECT_EQ(first.budget_polls, second.budget_polls);
}

TEST(SolveEngineTest, ConcurrentRequestsMatchFreshInstances) {
  // Many threads hammering one engine: each result must equal its
  // fresh-engine baseline. Runs under tsan in CI.
  const std::vector<BipartiteGraph> graphs = TestWorkload();
  std::vector<std::string> baselines;
  for (const BipartiteGraph& g : graphs) {
    SolveEngine fresh;
    baselines.push_back(SolveToJson(&fresh, g));
  }

  SolveEngine shared;
  constexpr int kRounds = 3;
  std::vector<std::string> results(graphs.size() * kRounds);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = SolveToJson(&shared, graphs[i % graphs.size()]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], baselines[i % graphs.size()]) << "request " << i;
  }
}

TEST(SolveEngineTest, PerRequestOverridesDoNotStick) {
  // A request that overrides the solver/budget gets the override; the next
  // request without one gets the engine default back.
  const BipartiteGraph g = WorstCaseFamily(6);
  SolveEngine engine;

  SolveRequest plain;
  plain.graph = &g;
  const std::string default_json =
      NormalizeTimings(AnalysisJson(engine.Solve(plain).analysis));

  SolveRequest greedy;
  greedy.graph = &g;
  greedy.solver = SolverChoice::kGreedyWalk;
  const JoinAnalysis greedy_run = engine.Solve(greedy).analysis;
  ASSERT_EQ(greedy_run.solution.solver_used.size(), 1u);
  EXPECT_EQ(greedy_run.solution.solver_used[0], "greedy-walk");

  SolveRequest budgeted;
  budgeted.graph = &g;
  budgeted.solver = SolverChoice::kFallback;
  SolveBudget budget;
  budget.deadline_ms = 0;
  budgeted.budget = budget;
  const JoinAnalysis degraded = engine.Solve(budgeted).analysis;
  EXPECT_GE(degraded.stats.budget_time_to_stop_ms, 0);

  // The overrides were per-request: the plain request still resolves to
  // the engine default, byte for byte.
  EXPECT_EQ(NormalizeTimings(AnalysisJson(engine.Solve(plain).analysis)),
            default_json);
}

TEST(SolveEngineTest, StagedPipelineFillsStageTimings) {
  SolveRequest request;
  const BipartiteGraph g = WorstCaseFamily(20);
  request.graph = &g;
  request.solver = SolverChoice::kIls;
  SolveEngine engine;
  const SolveStats stats = engine.Solve(request).analysis.stats;
  // Individual stages can round to zero microseconds, but a 38-edge ILS
  // solve cannot: the pipeline as a whole must have measured real time.
  EXPECT_GT(stats.stage_build_us + stats.stage_classify_us +
                stats.stage_partition_us + stats.stage_solve_us +
                stats.stage_verify_us + stats.stage_report_us,
            0);
  EXPECT_GE(stats.stage_solve_us, 0);
  EXPECT_GE(stats.solve_wall_us, 0);
}

TEST(SolveEngineTest, PoolIsCreatedLazilyAndReused) {
  SolveEngine engine;
  EXPECT_EQ(engine.pool(), nullptr);  // no parallel request yet
  const BipartiteGraph g = DisjointUnion(StarGraph(4), EvenCycle(4));
  SolveRequest request;
  request.graph = &g;
  request.threads = 4;
  engine.Solve(request);
  ThreadPool* pool = engine.pool();
  ASSERT_NE(pool, nullptr);
  // Later requests (even wider ones) reuse the same pool object.
  request.threads = 8;
  engine.Solve(request);
  EXPECT_EQ(engine.pool(), pool);
  EXPECT_EQ(engine.EnsurePool(16), pool);
}

TEST(SolveEngineTest, PublishesIntoOwnRegistryNotTheGlobalDefault) {
  const std::string before = MetricsRegistry::Default()->SnapshotJson();
  SolveEngine engine;
  const BipartiteGraph g = WorstCaseFamily(5);
  SolveRequest request;
  request.graph = &g;
  engine.Solve(request);
  // The engine's own session registry aggregated the request...
  EXPECT_GT(engine.metrics()->FindOrCreateCounter("solve.rungs_attempted")
                .Get(),
            0);
  // ...and the process-global default saw nothing.
  EXPECT_EQ(MetricsRegistry::Default()->SnapshotJson(), before);
}

TEST(SolveEngineTest, InjectedRegistryReceivesThePublish) {
  MetricsRegistry injected(/*enabled=*/true);
  SolveEngine::Options options;
  options.defaults.metrics = &injected;
  SolveEngine engine(options);
  const BipartiteGraph g = WorstCaseFamily(5);
  SolveRequest request;
  request.graph = &g;
  engine.Solve(request);
  engine.Solve(request);
  EXPECT_EQ(engine.metrics(), &injected);
  // Two requests folded in: the session counter aggregates across them.
  EXPECT_EQ(injected.FindOrCreateCounter("solve.rungs_attempted").Get(), 2);
}

TEST(SolveEngineTest, FacadeMatchesDirectEngineUse) {
  // JoinAnalyzer is a shell over the engine: same inputs, same bytes.
  const BipartiteGraph g = RandomConnectedBipartite(5, 5, 12, /*seed=*/21);
  const JoinAnalyzer analyzer;
  const std::string via_facade = NormalizeTimings(
      AnalysisJson(analyzer.AnalyzeJoinGraph(g, PredicateClass::kGeneral)));
  SolveEngine engine;
  EXPECT_EQ(SolveToJson(&engine, g), via_facade);
}

}  // namespace
}  // namespace pebblejoin
