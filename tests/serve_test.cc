// LineServer torture tests: loopback round-trips byte-identical to the
// single-shot engine, admission shedding (per-connection cap, server-wide
// cap, connection cap), the fault-injection matrix (accept failures,
// mid-request disconnects, short writes, broken pipes, stalled writers,
// oversized lines), fake-clock timeouts, and graceful drain under
// concurrent multi-client load. Runs under ThreadSanitizer in CI — the
// concurrency claims in serve/ are checked here, not argued.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <fstream>

#include "core/report.h"
#include "engine/solve_engine.h"
#include "serve/request_router.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "io/graph_io.h"
#include "obs/json.h"
#include "serve/fault_injector.h"
#include "serve/line_server.h"
#include "serve/serve_options.h"
#include "util/thread_pool.h"

#include "json_test_util.h"

namespace pebblejoin {
namespace {

// One corpus line: {"graph": "<serialized>"<extra>} — the wire format.
std::string Line(const BipartiteGraph& g, const std::string& extra = "") {
  return "{\"graph\": \"" + JsonEscape(SerializeBipartiteGraph(g)) + "\"" +
         extra + "}";
}

// A FakeClock that is safe to advance while server threads read it —
// util/budget.h's FakeClock is single-threaded by design.
struct SharedClock {
  std::atomic<int64_t> now_ms{0};
  std::function<int64_t()> AsFunction() {
    return [this] { return now_ms.load(std::memory_order_relaxed); };
  }
};

// Fast-tick defaults for tests: ephemeral port, 5 ms event-loop tick.
ServeOptions TestOptions(FaultInjector* injector = nullptr) {
  ServeOptions options;
  options.port = 0;
  options.poll_tick_ms = 5;
  options.injector = injector;
  return options;
}

// A blocking loopback client with poll-based timeouts. Every operation is
// tolerant of the server closing first (that is often the point).
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  // Writes all of `data`; false on any error (EPIPE included).
  bool Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  // Reads one '\n'-terminated line (newline stripped). False on EOF, read
  // error, or timeout; `eof()` distinguishes a clean close afterwards.
  bool ReadLine(std::string* line, int timeout_ms = 20000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const size_t nl = inbox_.find('\n');
      if (nl != std::string::npos) {
        *line = inbox_.substr(0, nl);
        inbox_.erase(0, nl + 1);
        return true;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        inbox_.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      eof_ = true;  // closed or reset; either way the server is done with us
      return false;
    }
  }

  // Drains the socket until EOF (or timeout); returns everything read.
  std::string ReadAll(int timeout_ms = 20000) {
    std::string all = inbox_;
    inbox_.clear();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!eof_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) break;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        all.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      eof_ = true;
    }
    return all;
  }

  // True when no byte arrives within `window_ms` — the exactly-one-response
  // check's other half.
  bool NoDataFor(int window_ms) {
    if (!inbox_.empty()) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, window_ms) <= 0) return true;
    char buf[1];
    return ::recv(fd_, buf, 1, MSG_PEEK) <= 0 && eof_;
  }

  // Waits (bounded) for the server to close its side.
  bool WaitForEof(int timeout_ms = 20000) {
    std::string rest = ReadAll(timeout_ms);
    return eof_;
  }

  bool eof() const { return eof_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string inbox_;
  bool eof_ = false;
};

// Starts a server or fails the test.
#define START_SERVER(server)                      \
  do {                                            \
    std::string start_error;                      \
    ASSERT_TRUE((server).Start(&start_error)) << start_error; \
  } while (0)

TEST(ServeTest, RoundTripMatchesSingleShotEngineOutput) {
  const std::vector<BipartiteGraph> graphs = {
      WorstCaseFamily(5), CompleteBipartite(3, 3),
      RandomConnectedBipartite(5, 5, 12, /*seed=*/4)};

  SolveEngine engine;
  ServeOptions options = TestOptions();
  options.threads = 2;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string request;
  for (const BipartiteGraph& g : graphs) request += Line(g) + "\n";
  ASSERT_TRUE(client.Send(request));

  for (size_t i = 0; i < graphs.size(); ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response)) << "response " << i;
    SolveEngine fresh;
    SolveRequest single;
    single.graph = &graphs[i];
    EXPECT_EQ(NormalizeTimings(response),
              NormalizeTimings(AnalysisJson(fresh.Solve(single).analysis)))
        << "line " << i;
  }
  // Exactly one response per line: nothing extra shows up.
  EXPECT_TRUE(client.NoDataFor(100));

  client.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 1);
  EXPECT_EQ(summary.lines, 3);
  EXPECT_EQ(summary.responses, 3);
  EXPECT_EQ(summary.rejected_lines, 0);
  EXPECT_FALSE(summary.aborted);
}

TEST(ServeTest, BlankAndMalformedLinesFollowBatchSemantics) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Blank line 1 keeps its number and produces no response; malformed
  // line 2 gets an error record; line 3 solves.
  ASSERT_TRUE(client.Send("   \nnot json\n" + Line(WorstCaseFamily(4)) + "\n"));

  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"line\":2"), std::string::npos) << response;
  EXPECT_NE(response.find("\"error\""), std::string::npos) << response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;

  client.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.lines, 3);
  EXPECT_EQ(summary.responses, 2);
}

TEST(ServeTest, OversizedLineIsShedWithAStructuredError) {
  SolveEngine engine;
  ServeOptions options = TestOptions();
  options.max_line_bytes = 128;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string oversized(300, 'x');
  ASSERT_TRUE(client.Send(oversized + "\n" + Line(WorstCaseFamily(4)) + "\n"));

  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"line\":1"), std::string::npos) << response;
  EXPECT_NE(response.find("rejected: line exceeds 128 bytes"),
            std::string::npos)
      << response;
  // The connection survives the babbling line; the next request solves.
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;

  client.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.rejected_lines, 1);
}

// Parks `n` tasks on the engine's pool so admitted solves cannot complete
// until Release() — which makes the in-flight caps deterministic to hit.
class PoolBlocker {
 public:
  PoolBlocker(SolveEngine* engine, int n) {
    ThreadPool* pool = engine->EnsurePool(n);
    for (int i = 0; i < n; ++i) {
      pool->Submit([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return released_; });
      });
    }
  }
  ~PoolBlocker() { Release(); }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(ServeTest, PerConnectionInflightCapShedsTheThirdPipelinedLine) {
  SolveEngine engine;
  PoolBlocker blocker(&engine, 2);  // both workers parked: solves queue

  ServeOptions options = TestOptions();
  options.threads = 2;
  options.per_conn_inflight = 2;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string line = Line(WorstCaseFamily(4));
  ASSERT_TRUE(client.Send(line + "\n" + line + "\n" + line + "\n"));

  // The rejection is deposited at its submission slot, so it arrives third
  // — after the two admitted solves complete.
  std::string response;
  const bool got_reject_early = client.ReadLine(&response, 500);
  EXPECT_FALSE(got_reject_early)
      << "no response should complete while the pool is parked: " << response;
  blocker.Release();

  EXPECT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;
  EXPECT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;
  EXPECT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("rejected: per-connection in-flight cap"),
            std::string::npos)
      << response;

  client.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.lines, 3);
  EXPECT_EQ(summary.responses, 3);
  EXPECT_EQ(summary.rejected_lines, 1);
}

TEST(ServeTest, ServerWideInflightCapShedsWithTheOverloadReason) {
  SolveEngine engine;
  PoolBlocker blocker(&engine, 2);

  ServeOptions options = TestOptions();
  options.threads = 2;
  options.max_inflight = 1;
  options.per_conn_inflight = 8;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string line = Line(WorstCaseFamily(4));
  ASSERT_TRUE(client.Send(line + "\n" + line + "\n"));

  // Hold the pool until the server has read and judged both lines — only
  // then is the shed of line 2 deterministic. No response can complete
  // while the workers are parked.
  std::string response;
  EXPECT_FALSE(client.ReadLine(&response, 500)) << response;
  blocker.Release();

  EXPECT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;
  EXPECT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("rejected: server overloaded"), std::string::npos)
      << response;

  client.Close();
  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, ConnectionCapShedsAtAcceptWithAStructuredError) {
  SolveEngine engine;
  ServeOptions options = TestOptions();
  options.max_connections = 1;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  // Round-trip one line so the first connection is definitely registered
  // before the second one knocks.
  ASSERT_TRUE(first.Send(Line(WorstCaseFamily(4)) + "\n"));
  std::string response;
  ASSERT_TRUE(first.ReadLine(&response));

  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(second.ReadLine(&response));
  EXPECT_EQ(response, "{\"error\":\"rejected: too many connections\"}");
  EXPECT_TRUE(second.WaitForEof());

  first.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 1);
  EXPECT_EQ(summary.conn_rejected, 1);
}

TEST(ServeTest, TransientAcceptFailuresAreSurvived) {
  SolveEngine engine;
  FaultInjector injector;
  injector.FailNextAccepts(2);
  LineServer server(&engine, TestOptions(&injector));
  START_SERVER(server);

  // The kernel completes our connect via the backlog; the server's accept
  // fails twice (ECONNABORTED) before the third attempt picks us up.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Line(WorstCaseFamily(4)) + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos);
  EXPECT_EQ(injector.accepts_failed(), 2);

  client.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.accept_failures, 2);
  EXPECT_EQ(summary.connections, 1);
}

TEST(ServeTest, MidRequestDisconnectIsContainedToThatConnection) {
  SolveEngine engine;
  FaultInjector injector;
  LineServer server(&engine, TestOptions(&injector));
  START_SERVER(server);

  // The injector cuts the stream 10 bytes into the request: the server
  // sees a partial line then EOF, closes that connection, and keeps
  // serving others.
  injector.DisconnectAfterReadBytes(10);
  TestClient victim(server.port());
  ASSERT_TRUE(victim.connected());
  ASSERT_TRUE(victim.Send(Line(WorstCaseFamily(4)) + "\n"));
  EXPECT_TRUE(victim.WaitForEof());
  EXPECT_GE(injector.disconnects_forced(), 1);

  injector.DisconnectAfterReadBytes(-1);  // disarm
  TestClient next(server.port());
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.Send(Line(WorstCaseFamily(4)) + "\n"));
  std::string response;
  ASSERT_TRUE(next.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos);

  next.Close();
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 2);
}

TEST(ServeTest, ShortWritesStillDeliverCompleteResponses) {
  SolveEngine engine;
  FaultInjector injector;
  injector.ShortWriteChunk(7);  // every write moves at most 7 bytes
  LineServer server(&engine, TestOptions(&injector));
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Line(WorstCaseFamily(5)) + "\n" +
                          Line(CompleteBipartite(3, 3)) + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos);
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos);
  EXPECT_GT(injector.writes_shortened(), 0);

  client.Close();
  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, BrokenPipeClosesOnlyThatConnection) {
  SolveEngine engine;
  FaultInjector injector;
  LineServer server(&engine, TestOptions(&injector));
  START_SERVER(server);

  injector.FailNextWrites(1);  // the victim's first response write EPIPEs
  TestClient victim(server.port());
  ASSERT_TRUE(victim.connected());
  ASSERT_TRUE(victim.Send(Line(WorstCaseFamily(4)) + "\n"));
  EXPECT_TRUE(victim.WaitForEof());
  EXPECT_EQ(injector.writes_failed(), 1);

  TestClient next(server.port());
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.Send(Line(WorstCaseFamily(4)) + "\n"));
  std::string response;
  ASSERT_TRUE(next.ReadLine(&response));
  EXPECT_NE(response.find("\"winner\""), std::string::npos);

  next.Close();
  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, StalledWriterIsTimedOutNotWedgedOn) {
  SolveEngine engine;
  FaultInjector injector;
  SharedClock clock;
  ServeOptions options = TestOptions(&injector);
  options.clock_ms = clock.AsFunction();
  options.idle_timeout_ms = -1;  // isolate the write-stall path
  options.write_stall_timeout_ms = 50;
  LineServer server(&engine, options);
  START_SERVER(server);

  injector.StallWrites(true);  // the client "stops reading": EAGAIN forever
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Line(WorstCaseFamily(4)) + "\n"));
  // Give the solve real time to finish and the flush to hit the stall,
  // then advance the fake clock past the stall budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  clock.now_ms.fetch_add(10000);

  EXPECT_TRUE(client.WaitForEof())
      << "a stalled writer must be closed, not waited on";
  injector.StallWrites(false);

  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 1);
}

TEST(ServeTest, IdleConnectionIsTimedOutUnderAFakeClock) {
  SolveEngine engine;
  SharedClock clock;
  ServeOptions options = TestOptions();
  options.clock_ms = clock.AsFunction();
  options.idle_timeout_ms = 100;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  clock.now_ms.fetch_add(10000);
  EXPECT_TRUE(client.WaitForEof());

  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 1);
  EXPECT_EQ(summary.lines, 0);
}

TEST(ServeTest, MetricsEndpointSpeaksOpenMetricsAndCloses) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);

  // Solve something first so the serve counters are non-zero.
  TestClient solver_client(server.port());
  ASSERT_TRUE(solver_client.connected());
  ASSERT_TRUE(solver_client.Send(Line(WorstCaseFamily(4)) + "\n"));
  std::string response;
  ASSERT_TRUE(solver_client.ReadLine(&response));
  solver_client.Close();

  TestClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.Send("GET /metrics HTTP/1.1\r\n\r\n"));
  const std::string reply = scraper.ReadAll();
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply.substr(0, 200);
  EXPECT_NE(reply.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(reply.find("pebblejoin_serve_requests_total"), std::string::npos);
  EXPECT_NE(reply.find("# EOF"), std::string::npos);
  EXPECT_TRUE(scraper.eof()) << "HTTP responses close the connection";

  TestClient lost(server.port());
  ASSERT_TRUE(lost.connected());
  ASSERT_TRUE(lost.Send("GET /nope HTTP/1.1\r\n\r\n"));
  EXPECT_NE(lost.ReadAll().find("404"), std::string::npos);

  server.BeginDrain();
  server.Wait();
}

// The mini-HTTP hardening contract scrapers depend on: every response —
// 200 and 404 alike — carries a Content-Length that matches its body
// exactly and an explicit `Connection: close`, then actually closes.
TEST(ServeTest, HttpResponsesCarryExactContentLengthAndClose) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);

  // reply -> (headers, body) split at the blank line; "" on malformed.
  const auto split = [](const std::string& reply) {
    const size_t blank = reply.find("\r\n\r\n");
    return blank == std::string::npos
               ? std::pair<std::string, std::string>("", "")
               : std::pair<std::string, std::string>(
                     reply.substr(0, blank + 2), reply.substr(blank + 4));
  };
  const auto content_length = [](const std::string& headers) {
    const size_t at = headers.find("Content-Length: ");
    if (at == std::string::npos) return int64_t{-1};
    return static_cast<int64_t>(
        std::strtoll(headers.c_str() + at + 16, nullptr, 10));
  };

  TestClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.Send("GET /metrics HTTP/1.1\r\n\r\n"));
  const auto [ok_headers, ok_body] = split(scraper.ReadAll());
  ASSERT_FALSE(ok_headers.empty());
  EXPECT_EQ(content_length(ok_headers),
            static_cast<int64_t>(ok_body.size()));
  EXPECT_NE(ok_headers.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(scraper.eof());

  TestClient lost(server.port());
  ASSERT_TRUE(lost.connected());
  ASSERT_TRUE(lost.Send("GET /nope HTTP/1.1\r\n\r\n"));
  const auto [nf_headers, nf_body] = split(lost.ReadAll());
  ASSERT_FALSE(nf_headers.empty());
  EXPECT_EQ(nf_headers.rfind("HTTP/1.1 404 Not Found", 0), 0u)
      << nf_headers.substr(0, 200);
  EXPECT_EQ(content_length(nf_headers),
            static_cast<int64_t>(nf_body.size()));
  EXPECT_GT(nf_body.size(), 0u) << "404 must carry a diagnostic body";
  EXPECT_NE(nf_headers.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(lost.eof());

  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, RequestIdIsEchoedOnlyWhenClientSupplied) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(Line(WorstCaseFamily(4), ", \"id\": \"req-42\"") +
                          "\n" + Line(WorstCaseFamily(4)) + "\n"));

  // The client-supplied id leads the response document; the id-less line's
  // response carries no "id" key at all (byte-identity with batch).
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.rfind("{\"id\":\"req-42\",", 0), 0u) << response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.find("\"id\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"winner\""), std::string::npos) << response;

  client.Close();
  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, ReadyzReports503WhileDraining) {
  SolveEngine engine;
  ServeOptions options;
  RequestRouter router(&engine, options, /*start_ms=*/0);

  std::string reply = router.HttpResponse("GET /readyz HTTP/1.1", 0);
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply.substr(0, 200);
  EXPECT_NE(reply.find("ready"), std::string::npos);

  router.BeginDrain(0);
  reply = router.HttpResponse("GET /readyz HTTP/1.1", 0);
  EXPECT_EQ(reply.rfind("HTTP/1.1 503 Service Unavailable", 0), 0u)
      << reply.substr(0, 200);
  EXPECT_NE(reply.find("draining"), std::string::npos);
  // Liveness is unaffected: a draining process is still alive.
  reply = router.HttpResponse("GET /healthz HTTP/1.1", 0);
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply.substr(0, 200);
}

TEST(ServeTest, ReadyzReports503AtTheInflightCeiling) {
  SolveEngine engine;
  ServeOptions options;
  options.max_inflight = 1;
  RequestRouter router(&engine, options, /*start_ms=*/0);

  std::string denied;
  ASSERT_TRUE(router.AdmitSolve(/*conn_id=*/1, &denied)) << denied;
  std::string reply = router.HttpResponse("GET /readyz HTTP/1.1", 0);
  EXPECT_EQ(reply.rfind("HTTP/1.1 503 Service Unavailable", 0), 0u)
      << reply.substr(0, 200);
  EXPECT_NE(reply.find("saturated"), std::string::npos);

  router.ReleaseSolve(/*conn_id=*/1);
  reply = router.HttpResponse("GET /readyz HTTP/1.1", 0);
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply.substr(0, 200);
}

TEST(ServeTest, StatuszReportsWindowSloAndSlowRequests) {
  SolveEngine engine;
  ServeOptions options = TestOptions();
  options.slo_p99_ms = 1000;
  options.slo_error_rate = 0.1;
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(
      client.Send(Line(WorstCaseFamily(4), ", \"id\": \"slowest-1\"") + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  client.Close();

  TestClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.Send("GET /statusz HTTP/1.1\r\n\r\n"));
  const std::string reply = scraper.ReadAll();
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply.substr(0, 200);
  EXPECT_NE(reply.find("application/json"), std::string::npos);
  EXPECT_NE(reply.find("\"build\""), std::string::npos);
  EXPECT_NE(reply.find("\"uptime_ms\""), std::string::npos);
  EXPECT_NE(reply.find("\"window\""), std::string::npos);
  EXPECT_NE(reply.find("\"qps\""), std::string::npos);
  EXPECT_NE(reply.find("\"slo\""), std::string::npos);
  EXPECT_NE(reply.find("\"p99_burn\""), std::string::npos);
  // The completed request surfaces in the slow-request table by its
  // correlation id, with solver provenance attached.
  EXPECT_NE(reply.find("\"slow_requests\""), std::string::npos);
  EXPECT_NE(reply.find("\"slowest-1\""), std::string::npos);
  EXPECT_NE(reply.find("\"solvers\""), std::string::npos);

  server.BeginDrain();
  server.Wait();
}

TEST(ServeTest, TraceSampleWritesAChromeTracePerSampledRequest) {
  SolveEngine engine;
  ServeOptions options = TestOptions();
  options.trace_sample = 1;  // sample every request
  options.trace_dir = ::testing::TempDir();
  LineServer server(&engine, options);
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(
      client.Send(Line(WorstCaseFamily(4), ", \"id\": \"t1\"") + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.rfind("{\"id\":\"t1\",", 0), 0u) << response;

  // The trace file is written asynchronously (off the solve path); drain
  // flushes the writer, so after Wait() the file must exist, named by the
  // request's correlation id and carrying the correlate instant.
  client.Close();
  server.BeginDrain();
  server.Wait();

  std::ifstream trace(options.trace_dir + "/trace-t1.json");
  ASSERT_TRUE(trace.is_open());
  std::string trace_body((std::istreambuf_iterator<char>(trace)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(trace_body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_body.find("\"t1\""), std::string::npos);
}

TEST(ServeTest, AbortStopsTheServerImmediately) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  server.Abort();
  EXPECT_TRUE(client.WaitForEof());
  const LineServer::Summary summary = server.Wait();
  EXPECT_TRUE(summary.aborted);
}

TEST(ServeTest, DrainWithNoConnectionsExitsImmediately) {
  SolveEngine engine;
  LineServer server(&engine, TestOptions());
  START_SERVER(server);
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();
  EXPECT_EQ(summary.connections, 0);
  EXPECT_FALSE(summary.aborted);
}

// The drain torture: many concurrent pipelining clients, short writes
// armed, one babbling client, one vanishing client — then BeginDrain in
// the middle of the load. The server must stop cleanly (Wait returns, no
// TSan report), every line a client does receive must be well-formed, and
// nobody hangs.
TEST(ServeTest, DrainUnderConcurrentMultiClientLoadExitsCleanly) {
  SolveEngine engine;
  FaultInjector injector;
  injector.ShortWriteChunk(64);

  ServeOptions options = TestOptions(&injector);
  options.threads = 4;
  options.per_conn_inflight = 4;
  options.max_inflight = 64;
  options.max_line_bytes = 2048;
  options.drain_ms = 5000;
  options.request_deadline_cap_ms = 2000;
  LineServer server(&engine, options);
  START_SERVER(server);

  constexpr int kClients = 9;
  constexpr int kLinesPerClient = 6;
  const std::string line = Line(WorstCaseFamily(4));

  struct ClientOutcome {
    int sent = 0;
    int received = 0;
    bool malformed = false;
  };
  std::vector<ClientOutcome> outcomes(kClients);

  // Connect everyone before the load so most connections beat the drain.
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<TestClient>(server.port()));
    ASSERT_TRUE(clients[c]->connected()) << "client " << c;
  }

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &clients, &outcomes, &line] {
      TestClient& client = *clients[c];
      ClientOutcome& outcome = outcomes[c];
      std::string burst;
      for (int i = 0; i < kLinesPerClient; ++i) {
        if (c == 1 && i == 2) {
          burst += std::string(4096, 'x');  // beyond max_line_bytes
        } else {
          burst += line;
        }
        burst += '\n';
        ++outcome.sent;
      }
      if (!client.Send(burst)) return;  // drain may have beaten us; fine
      if (c == 2) {
        client.Close();  // vanishes without reading a single response
        return;
      }
      std::string response;
      while (outcome.received < outcome.sent &&
             client.ReadLine(&response, 15000)) {
        if (response.empty() || response[0] != '{') outcome.malformed = true;
        ++outcome.received;
      }
    });
  }

  // Let the load get going, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.BeginDrain();
  const LineServer::Summary summary = server.Wait();

  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(summary.aborted) << "drain must finish inside its budget";
  EXPECT_GE(summary.connections, 1);
  EXPECT_LE(summary.connections, kClients);
  int64_t received_total = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_FALSE(outcomes[c].malformed) << "client " << c;
    EXPECT_LE(outcomes[c].received, outcomes[c].sent) << "client " << c;
    if (c != 2) received_total += outcomes[c].received;
  }
  // Everything a client received was produced by the server, and every
  // line the server read got at most one response (shed or solved).
  EXPECT_LE(received_total, summary.responses);
  EXPECT_LE(summary.responses, summary.lines);
}

}  // namespace
}  // namespace pebblejoin
