// Cross-module integration tests: the paper's storyline executed end to end.

#include "core/analyzer.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/realizers.h"
#include "join/workload.h"
#include "pebble/bounds.h"
#include "reductions/tsp3_to_pebble.h"
#include "reductions/tsp4_to_tsp3.h"
#include "solver/exact_pebbler.h"
#include "tsp/held_karp.h"

namespace pebblejoin {
namespace {

// The same combinatorial object — the Figure-1 worst-case graph — dressed
// as a set-containment join and as a spatial-overlap join must cost exactly
// the same, and strictly more than any equijoin of the same output size.
TEST(IntegrationTest, SameGraphDifferentPredicatesSameCost) {
  const int n = 6;
  AnalyzerOptions options;
  options.solver = SolverChoice::kExact;
  const JoinAnalyzer analyzer(options);

  const Realization<IntSet> as_sets =
      RealizeAsSetContainment(WorstCaseFamily(n));
  const JoinAnalysis set_analysis =
      analyzer.AnalyzeSetContainment(as_sets.left, as_sets.right);

  const Realization<Rect> as_rects = RealizeWorstCaseAsSpatial(n);
  const JoinAnalysis spatial_analysis =
      analyzer.AnalyzeSpatialOverlap(as_rects.left, as_rects.right);

  EXPECT_EQ(set_analysis.output_size, 2 * n);
  EXPECT_EQ(spatial_analysis.output_size, 2 * n);
  EXPECT_EQ(set_analysis.solution.effective_cost,
            spatial_analysis.solution.effective_cost);
  EXPECT_EQ(set_analysis.solution.effective_cost,
            WorstCaseFamilyOptimalCost(n));

  // An equijoin with the same output size is strictly cheaper (perfect).
  EquijoinWorkloadOptions eq;
  eq.num_keys = n;
  eq.min_left_dup = eq.max_left_dup = 1;
  eq.min_right_dup = eq.max_right_dup = 2;
  const Realization<int64_t> w = GenerateEquijoinWorkload(eq);
  const JoinAnalysis eq_analysis = analyzer.AnalyzeEquiJoin(w.left, w.right);
  EXPECT_EQ(eq_analysis.output_size, 2 * n);
  EXPECT_LT(eq_analysis.solution.effective_cost,
            set_analysis.solution.effective_cost);
}

// The full hardness pipeline of Section 4: TSP-4(1,2) → TSP-3(1,2) →
// PEBBLE, solved at each stage, with the solution mapped all the way back.
TEST(IntegrationTest, FullReductionPipeline) {
  const Tsp12Instance g4(RandomConnectedBoundedDegree(6, 4, 4, 11));
  ASSERT_LE(g4.MaxGoodDegree(), 4);

  // Stage 1: degree reduction.
  const Tsp4ToTsp3Reduction stage1(g4);
  const Tsp12Instance& g3 = stage1.h();
  ASSERT_LE(g3.MaxGoodDegree(), 3);

  // Stage 2: to PEBBLE.
  const Tsp3ToPebbleReduction stage2(g3);

  // Solve the PEBBLE instance with the heuristic pipeline (B is too large
  // for the exact solver); the test requires a valid chain of mappings all
  // the way back plus sane costs, not optimality.
  AnalyzerOptions options;
  options.solver = SolverChoice::kLocalSearch;
  const JoinAnalyzer analyzer(options);
  const JoinAnalysis pebble_analysis = analyzer.AnalyzeJoinGraph(
      stage2.b(), PredicateClass::kSetContainment);
  ASSERT_GT(pebble_analysis.output_size, 0);

  // Map the pebbling back to a TSP-3 tour, then to a TSP-4 tour.
  const Tour tour3 =
      stage2.MapEdgeOrderBack(pebble_analysis.solution.edge_order);
  ASSERT_TRUE(IsValidTour(g3, tour3));
  const Tour tour4 = stage1.MapTourBack(tour3);
  ASSERT_TRUE(IsValidTour(g4, tour4));

  // The mapped-back tour cannot beat the optimum.
  const auto opt4 = HeldKarpSolve(g4);
  ASSERT_TRUE(opt4.has_value());
  EXPECT_GE(TourCost(g4, tour4), opt4->cost);
}

// Lemma 3.3 in action: a PEBBLE-hard graph coming out of the reduction is
// realizable as an actual set-containment join instance whose join graph
// matches exactly.
TEST(IntegrationTest, ReductionOutputIsARealJoin) {
  const Tsp12Instance g3(RandomConnectedBoundedDegree(7, 3, 3, 5));
  const Tsp3ToPebbleReduction reduction(g3);
  const Realization<IntSet> join_instance =
      RealizeAsSetContainment(reduction.b());
  const BipartiteGraph rebuilt =
      BuildSetContainmentJoinGraph(join_instance.left, join_instance.right);
  EXPECT_TRUE(rebuilt.SameEdgeSet(reduction.b()));
}

// Equijoin vs set-containment at matched output size, over a seed sweep:
// equijoins are always perfect; set-containment joins generally are not.
TEST(IntegrationTest, PredicateComplexityOrdering) {
  const JoinAnalyzer analyzer;
  int imperfect_set_joins = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const BipartiteGraph hard = RandomConnectedBipartite(6, 6, 14, seed);
    const Realization<IntSet> as_sets = RealizeAsSetContainment(hard);
    const JoinAnalysis set_analysis =
        analyzer.AnalyzeSetContainment(as_sets.left, as_sets.right);
    EXPECT_EQ(set_analysis.output_size, 14);
    if (!set_analysis.perfect) ++imperfect_set_joins;

    EXPECT_GE(set_analysis.solution.effective_cost, 14);
    EXPECT_LE(set_analysis.solution.effective_cost,
              DfsUpperBoundForConnected(14));
  }
  EXPECT_GT(imperfect_set_joins, 0);
}

}  // namespace
}  // namespace pebblejoin
