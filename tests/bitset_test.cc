// util/bitset.h and util/arena.h: the flat primitives under the CSR core.
//
// The Bitset checks are exhaustive over small widths, hit the 63/64/65
// word-boundary widths explicitly, and cross-check every operation against
// a std::set<size_t> reference model over randomized operation sequences —
// the word-scan shortcuts (ctz, popcount, `word &= word - 1`) must never
// diverge from the one-bit-at-a-time semantics.

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/bitset.h"

namespace pebblejoin {
namespace {

// The widths where word-boundary bugs live, plus a few mundane ones.
const size_t kWidths[] = {1, 2, 7, 8, 63, 64, 65, 127, 128, 129, 200};

TEST(BitsetTest, StartsEmpty) {
  for (size_t width : kWidths) {
    SCOPED_TRACE(width);
    Bitset b(width);
    EXPECT_EQ(b.size(), width);
    EXPECT_EQ(b.Count(), 0u);
    EXPECT_FALSE(b.AnySet());
    EXPECT_EQ(b.FindFirst(), -1);
    for (size_t i = 0; i < width; ++i) EXPECT_FALSE(b.Test(i));
  }
}

TEST(BitsetTest, SetResetSingleBitsExhaustive) {
  for (size_t width : kWidths) {
    SCOPED_TRACE(width);
    Bitset b(width);
    for (size_t i = 0; i < width; ++i) {
      b.Set(i);
      EXPECT_TRUE(b.Test(i));
      EXPECT_EQ(b.Count(), 1u);
      EXPECT_TRUE(b.AnySet());
      EXPECT_EQ(b.FindFirst(), static_cast<int64_t>(i));
      // No neighbor smearing across the word boundary.
      if (i > 0) {
        EXPECT_FALSE(b.Test(i - 1));
      }
      if (i + 1 < width) {
        EXPECT_FALSE(b.Test(i + 1));
      }
      b.Reset(i);
      EXPECT_FALSE(b.Test(i));
      EXPECT_EQ(b.Count(), 0u);
    }
  }
}

TEST(BitsetTest, SetAllKeepsTailZero) {
  for (size_t width : kWidths) {
    SCOPED_TRACE(width);
    Bitset b(width);
    b.SetAll();
    EXPECT_EQ(b.Count(), width);
    for (size_t i = 0; i < width; ++i) EXPECT_TRUE(b.Test(i));
    // The unused tail of the last word must stay zero, or Count/scans of
    // later operations would see ghost bits.
    if ((width & 63) != 0) {
      const uint64_t tail_word = b.words()[b.num_words() - 1];
      EXPECT_EQ(tail_word >> (width & 63), 0u);
    }
    b.ResetAll();
    EXPECT_EQ(b.Count(), 0u);
    EXPECT_FALSE(b.AnySet());
  }
}

TEST(BitsetTest, AssignWithValueTrue) {
  for (size_t width : kWidths) {
    SCOPED_TRACE(width);
    Bitset b;
    b.Assign(width, true);
    EXPECT_EQ(b.size(), width);
    EXPECT_EQ(b.Count(), width);
    b.Assign(width / 2, false);
    EXPECT_EQ(b.size(), width / 2);
    EXPECT_EQ(b.Count(), 0u);
  }
}

TEST(BitsetTest, FindNextAcrossWordBoundaries) {
  Bitset b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(65);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 0);
  EXPECT_EQ(b.FindNext(1), 63);
  EXPECT_EQ(b.FindNext(63), 63);
  EXPECT_EQ(b.FindNext(64), 64);
  EXPECT_EQ(b.FindNext(65), 65);
  EXPECT_EQ(b.FindNext(66), 199);
  EXPECT_EQ(b.FindNext(200), -1);
  b.Reset(199);
  EXPECT_EQ(b.FindNext(66), -1);
}

TEST(BitsetTest, ForEachSetBitVisitsAscending) {
  Bitset b(130);
  const std::vector<size_t> expected = {0, 1, 62, 63, 64, 65, 127, 128, 129};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

// Randomized differential run against std::set — every mutation and query
// must agree with the reference model at every step.
TEST(BitsetTest, MatchesStdSetUnderRandomOperations) {
  for (size_t width : {63u, 64u, 65u, 300u}) {
    SCOPED_TRACE(width);
    std::mt19937_64 rng(width * 7919);
    Bitset b(width);
    std::set<size_t> model;
    for (int step = 0; step < 4000; ++step) {
      const size_t i = rng() % width;
      switch (rng() % 4) {
        case 0:
          b.Set(i);
          model.insert(i);
          break;
        case 1:
          b.Reset(i);
          model.erase(i);
          break;
        case 2: {
          const bool value = rng() & 1;
          b.SetTo(i, value);
          if (value) model.insert(i);
          else model.erase(i);
          break;
        }
        case 3:
          ASSERT_EQ(b.Test(i), model.count(i) == 1);
          break;
      }
      ASSERT_EQ(b.Count(), model.size());
      ASSERT_EQ(b.AnySet(), !model.empty());
      ASSERT_EQ(b.FindFirst(),
                model.empty() ? -1 : static_cast<int64_t>(*model.begin()));
      // FindNext from a random origin == lower_bound in the model.
      const size_t from = rng() % (width + 1);
      const auto it = model.lower_bound(from);
      ASSERT_EQ(b.FindNext(from),
                it == model.end() ? -1 : static_cast<int64_t>(*it));
    }
    // Full scan parity at the end of the run.
    std::vector<size_t> scanned;
    b.ForEachSetBit([&](size_t i) { scanned.push_back(i); });
    ASSERT_EQ(scanned, std::vector<size_t>(model.begin(), model.end()));
  }
}

TEST(ArenaTest, AllocationsAreCacheLineAlignedAndZeroed) {
  Arena arena(/*initial_block_bytes=*/128);  // force several growths
  for (int i = 0; i < 50; ++i) {
    const size_t count = 1 + static_cast<size_t>(i) * 37 % 4000;
    const uint32_t* p = arena.AllocateArray<uint32_t>(count);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u);
    for (size_t j = 0; j < count; ++j) ASSERT_EQ(p[j], 0u);
  }
  EXPECT_GT(arena.allocated_bytes(), 0u);
}

TEST(ArenaTest, DistinctAllocationsDoNotOverlap) {
  Arena arena;
  uint64_t* a = arena.AllocateArray<uint64_t>(100);
  uint64_t* b = arena.AllocateArray<uint64_t>(100);
  for (int i = 0; i < 100; ++i) a[i] = 1;
  for (int i = 0; i < 100; ++i) b[i] = 2;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], 1u);
    EXPECT_EQ(b[i], 2u);
  }
}

TEST(ArenaTest, ZeroCountReturnsNull) {
  Arena arena;
  EXPECT_EQ(arena.AllocateArray<uint32_t>(0), nullptr);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
}

}  // namespace
}  // namespace pebblejoin
