// Hardware-counter layer (obs/prof.h) and folded-stack aggregation
// (obs/sampler.h). Everything here runs on hosts with no PMU access at
// all: real syscalls are exercised only through the graceful-degradation
// seams (fake readers, ForceUnavailableForTest), which is precisely the
// contract CI containers rely on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "graph/generators.h"
#include "obs/prof.h"
#include "obs/sampler.h"

namespace pebblejoin {
namespace {

// Re-enables real counter opens when a test that forced unavailability
// exits (including via an assertion failure).
struct ForceGuard {
  explicit ForceGuard(const std::string& reason) {
    PerfCounterGroup::ForceUnavailableForTest(reason);
  }
  ~ForceGuard() { PerfCounterGroup::ForceUnavailableForTest(""); }
};

// --- multiplexing scaling --------------------------------------------------

TEST(ScaleValueTest, FullyScheduledCounterIsUnscaled) {
  EXPECT_EQ(PerfCounterGroup::ScaleValue(1000, 500, 500), 1000);
  // running > enabled never happens in practice; treat as unscaled.
  EXPECT_EQ(PerfCounterGroup::ScaleValue(1000, 500, 600), 1000);
}

TEST(ScaleValueTest, NeverScheduledCounterYieldsZero) {
  EXPECT_EQ(PerfCounterGroup::ScaleValue(1000, 500, 0), 0);
}

TEST(ScaleValueTest, HalfScheduledCounterDoubles) {
  EXPECT_EQ(PerfCounterGroup::ScaleValue(1000, 1000, 500), 2000);
  EXPECT_EQ(PerfCounterGroup::ScaleValue(300, 900, 300), 900);
}

// --- fake-reader groups and probe nesting ----------------------------------

TEST(PerfCounterGroupTest, FakeReaderGroupIsAvailable) {
  PerfCounterGroup group([] { return PerfCounts(); });
  EXPECT_TRUE(group.available());
  EXPECT_TRUE(group.unavailable_reason().empty());
}

TEST(PerfCounterGroupTest, ProbeAttributesDeltaToSink) {
  // The fake clock ticks 100 cycles / 10 misses per Read().
  PerfCounts now;
  PerfCounterGroup group([&now] {
    now.cycles += 100;
    now.cache_misses += 10;
    return now;
  });
  PerfCounts sink;
  {
    ScopedCounterProbe probe(&group, &sink);
    // Construction read once; destruction reads once more: delta 100/10.
  }
  EXPECT_EQ(sink.cycles, 100);
  EXPECT_EQ(sink.cache_misses, 10);
}

TEST(PerfCounterGroupTest, NestedProbesEachSeeTheirOwnSpan) {
  PerfCounts now;
  PerfCounterGroup group([&now] {
    now.cycles += 1;
    return now;
  });
  PerfCounts outer, inner;
  {
    ScopedCounterProbe outer_probe(&group, &outer);  // read #1
    {
      ScopedCounterProbe inner_probe(&group, &inner);  // read #2
    }  // read #3: inner delta = 1
  }  // read #4: outer delta = 3 (includes the inner probe's reads)
  EXPECT_EQ(inner.cycles, 1);
  EXPECT_EQ(outer.cycles, 3);
  // An outer probe's span contains its inner probes' by construction.
  EXPECT_GE(outer.cycles, inner.cycles);
}

TEST(PerfCounterGroupTest, NullGroupAndNullSinkAreNoOps) {
  PerfCounts sink;
  { ScopedCounterProbe probe(nullptr, &sink); }
  EXPECT_EQ(sink.cycles, 0);
  PerfCounterGroup group([] {
    PerfCounts c;
    c.cycles = 42;
    return c;
  });
  { ScopedCounterProbe probe(&group, nullptr); }  // must not crash
}

TEST(PerfCounterGroupTest, HotLoopProbeFlushesTwoFields) {
  PerfCounts now;
  PerfCounterGroup group([&now] {
    now.cycles += 7;
    now.cache_misses += 3;
    now.instructions += 1000;  // not captured by the hot-loop pair
    return now;
  });
  int64_t cycles = 0, misses = 0;
  { ScopedHotLoopProbe probe(&group, &cycles, &misses); }
  EXPECT_EQ(cycles, 7);
  EXPECT_EQ(misses, 3);
}

// --- the denied-container fallback path ------------------------------------

TEST(PerfCounterGroupTest, ForcedUnavailableGroupReportsReasonAndZeros) {
  ForceGuard guard("forced-by-test");
  PerfCounterGroup group;
  EXPECT_FALSE(group.available());
  EXPECT_EQ(group.unavailable_reason(), "forced-by-test");
  const PerfCounts counts = group.Read();
  EXPECT_EQ(counts.cycles, 0);
  EXPECT_EQ(counts.instructions, 0);
  PerfCounts sink;
  { ScopedCounterProbe probe(&group, &sink); }  // no-op, not a crash
  EXPECT_EQ(sink.cycles, 0);
}

TEST(PerfCounterGroupTest, SolveDegradesToUnavailableStatusNotFailure) {
  // End to end: a perf-enabled solve on a host that denies
  // perf_event_open must complete normally and record why the counters
  // are zero. The analyzer runs in a fresh thread so its thread-local
  // group is opened under the force (groups opened by earlier tests are
  // deliberately unaffected).
  ForceGuard guard("forced-by-test");
  JoinAnalysis analysis;
  std::thread worker([&analysis] {
    AnalyzerOptions options;
    options.perf = true;
    const JoinAnalyzer analyzer(options);
    analysis = analyzer.AnalyzeJoinGraph(WorstCaseFamily(6),
                                         PredicateClass::kGeneral);
  });
  worker.join();
  EXPECT_EQ(analysis.stats.perf, "unavailable:forced-by-test");
  EXPECT_EQ(analysis.stats.perf_cycles, 0);
  EXPECT_EQ(analysis.stats.stage_solve_cycles, 0);
  // The solve itself is untouched by the degradation.
  EXPECT_FALSE(analysis.solution.edge_order.empty());
}

TEST(PerfCounterGroupTest, PerfOffRequestsKeepTheOffStatus) {
  const JoinAnalyzer analyzer;  // default options: perf off
  const JoinAnalysis analysis =
      analyzer.AnalyzeJoinGraph(WorstCaseFamily(6), PredicateClass::kGeneral);
  EXPECT_EQ(analysis.stats.perf, "off");
  EXPECT_EQ(analysis.stats.perf_cycles, 0);
}

// --- folded-stack aggregation goldens --------------------------------------

TEST(StackAggregatorTest, FoldsRootFirstFramesWithCounts) {
  StackAggregator agg;
  agg.AddSample({"main", "Solve", "BranchAndBound"});
  agg.AddSample({"main", "Solve", "BranchAndBound"});
  agg.AddSample({"main", "Solve", "HeldKarp"});
  EXPECT_EQ(agg.total_samples(), 3);
  EXPECT_EQ(agg.Folded(),
            "main;Solve;BranchAndBound 2\n"
            "main;Solve;HeldKarp 1\n");
}

TEST(StackAggregatorTest, OutputIsSortedRegardlessOfArrivalOrder) {
  StackAggregator a, b;
  a.AddSample({"z"});
  a.AddSample({"a"});
  b.AddSample({"a"});
  b.AddSample({"z"});
  EXPECT_EQ(a.Folded(), b.Folded());
  EXPECT_EQ(a.Folded(), "a 1\nz 1\n");
}

TEST(StackAggregatorTest, SanitizesFormatSeparatorsInFrames) {
  StackAggregator agg;
  agg.AddSample({"operator ()", "a;b"});
  // ' ' and ';' are the format's two separators; both become '_'.
  EXPECT_EQ(agg.Folded(), "operator_();a_b 1\n");
}

TEST(StackAggregatorTest, EmptyFramesFoldToPlaceholder) {
  StackAggregator agg;
  agg.AddSample({});
  agg.AddSample({""});
  EXPECT_EQ(agg.Folded(), "? 2\n");
}

TEST(StackAggregatorTest, AddSamplesWeightsAndIgnoresNonPositiveCounts) {
  StackAggregator agg;
  agg.AddSamples({"hot"}, 40);
  agg.AddSamples({"hot"}, 2);
  agg.AddSamples({"cold"}, 0);
  agg.AddSamples({"cold"}, -5);
  EXPECT_EQ(agg.total_samples(), 42);
  EXPECT_EQ(agg.Folded(), "hot 42\n");
}

// --- profiler lifecycle (no timer assertions: CI schedulers jitter) --------

TEST(SamplingProfilerTest, StopWithoutStartIsSafe) {
  SamplingProfiler profiler;
  profiler.Stop();
  EXPECT_EQ(profiler.sample_count(), 0);
  EXPECT_EQ(profiler.Folded(), "");
}

TEST(SamplingProfilerTest, SecondActiveProfilerIsRefused) {
  if (!SamplingProfiler::Supported()) {
    GTEST_SKIP() << "sampling profiler unsupported on this build";
  }
  SamplingProfiler first;
  ASSERT_TRUE(first.Start()) << first.reason();
  SamplingProfiler second;
  EXPECT_FALSE(second.Start());
  EXPECT_FALSE(second.reason().empty());
  first.Stop();
  // With the first retired, the slot frees up.
  SamplingProfiler third;
  EXPECT_TRUE(third.Start()) << third.reason();
  third.Stop();
}

TEST(SamplingProfilerTest, WriteFoldedAlwaysEmitsTheSampleComment) {
  SamplingProfiler profiler;  // never started: zero samples
  const std::string path =
      testing::TempDir() + "/prof_test_folded.txt";
  ASSERT_TRUE(profiler.WriteFolded(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  EXPECT_STREQ(line, "# samples 0 dropped 0\n");
}

}  // namespace
}  // namespace pebblejoin
