#include "pebble/bounds.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "solver/exact_pebbler.h"

namespace pebblejoin {
namespace {

TEST(BoundsTest, ConnectedGraphBounds) {
  const Graph g = WorstCaseFamily(4).ToGraph();  // m = 8, connected
  const PebblingBounds b = ComputeBounds(g);
  EXPECT_EQ(b.num_edges, 8);
  EXPECT_EQ(b.betti_zero, 1);
  EXPECT_EQ(b.lower, 8);
  EXPECT_EQ(b.upper_general, 15);    // 2m − 1
  EXPECT_EQ(b.upper_dfs_bound, 9);   // m + ⌊(m−1)/4⌋
}

TEST(BoundsTest, SumsOverComponents) {
  const Graph g = MatchingGraph(5).ToGraph();
  const PebblingBounds b = ComputeBounds(g);
  EXPECT_EQ(b.betti_zero, 5);
  EXPECT_EQ(b.lower, 5);
  EXPECT_EQ(b.upper_general, 5);    // Σ (2·1 − 1)
  EXPECT_EQ(b.upper_dfs_bound, 5);  // Σ (1 + 0)
}

TEST(BoundsTest, EmptyGraph) {
  const PebblingBounds b = ComputeBounds(Graph(3));
  EXPECT_EQ(b.num_edges, 0);
  EXPECT_EQ(b.lower, 0);
  EXPECT_EQ(b.upper_general, 0);
  EXPECT_EQ(b.upper_dfs_bound, 0);
}

TEST(DfsUpperBoundTest, IntegralForm) {
  EXPECT_EQ(DfsUpperBoundForConnected(1), 1);
  EXPECT_EQ(DfsUpperBoundForConnected(3), 3);
  EXPECT_EQ(DfsUpperBoundForConnected(4), 4);
  EXPECT_EQ(DfsUpperBoundForConnected(5), 6);
  EXPECT_EQ(DfsUpperBoundForConnected(8), 9);    // 1.25·8 − 1
  EXPECT_EQ(DfsUpperBoundForConnected(12), 14);  // 1.25·12 − 1
}

TEST(WorstCaseFamilyCostTest, ClosedForm) {
  // π(Gₙ) = 2n + ⌈n/2⌉ − 1.
  EXPECT_EQ(WorstCaseFamilyOptimalCost(3), 7);
  EXPECT_EQ(WorstCaseFamilyOptimalCost(4), 9);   // 1.25·8 − 1
  EXPECT_EQ(WorstCaseFamilyOptimalCost(5), 12);
  EXPECT_EQ(WorstCaseFamilyOptimalCost(6), 14);  // 1.25·12 − 1
  EXPECT_EQ(WorstCaseFamilyOptimalCost(8), 19);  // 1.25·16 − 1
}

TEST(WorstCaseFamilyCostTest, MatchesExactSolver) {
  // Ground truth for Theorem 3.3 on the sizes the exact solver can handle.
  const ExactPebbler exact;
  for (int n = 3; n <= 8; ++n) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    const auto cost = exact.OptimalEffectiveCost(g);
    ASSERT_TRUE(cost.has_value()) << "n=" << n;
    EXPECT_EQ(*cost, WorstCaseFamilyOptimalCost(n)) << "n=" << n;
  }
}

TEST(WorstCaseFamilyCostTest, EqualsDfsBoundAtMultiplesOfFour) {
  // At m ≡ 0 (mod 4) the family exactly meets the Theorem 3.1 bound: the
  // upper bound is tight (Theorem 3.3).
  for (int n = 4; n <= 16; n += 2) {
    EXPECT_EQ(WorstCaseFamilyOptimalCost(n),
              DfsUpperBoundForConnected(2 * n))
        << "n=" << n;
  }
}

TEST(EquijoinCostTest, CompleteBipartiteIsPerfect) {
  EXPECT_EQ(EquijoinOptimalEffectiveCost(CompleteBipartite(3, 5).ToGraph()),
            15);
  EXPECT_EQ(EquijoinOptimalEffectiveCost(MatchingGraph(4).ToGraph()), 4);
}

TEST(EquijoinCostDeathTest, RejectsNonEquijoinShape) {
  EXPECT_DEATH(EquijoinOptimalEffectiveCost(PathGraph(3).ToGraph()),
               "equijoin");
}

TEST(BoundsPropertyTest, ExactCostRespectsBoundsOnRandomGraphs) {
  const ExactPebbler exact;
  int solved = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const Graph g =
        RandomConnectedBipartite(4, 4, 7 + seed % 6, seed).ToGraph();
    const PebblingBounds b = ComputeBounds(g);
    const auto cost = exact.OptimalEffectiveCost(g);
    if (!cost.has_value()) continue;
    ++solved;
    EXPECT_GE(*cost, b.lower) << g.DebugString();
    EXPECT_LE(*cost, b.upper_dfs_bound) << g.DebugString();
    EXPECT_LE(*cost, b.upper_general) << g.DebugString();
  }
  EXPECT_GT(solved, 20);
}

}  // namespace
}  // namespace pebblejoin
