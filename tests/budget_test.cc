#include "util/budget.h"

#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(SolveBudgetTest, DefaultsAreUnlimited) {
  const SolveBudget budget;
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_FALSE(budget.has_node_budget());
  EXPECT_FALSE(budget.has_memory_limit());
}

TEST(BudgetContextTest, UnlimitedNeverStops) {
  BudgetContext ctx{SolveBudget{}};
  for (int i = 0; i < 3 * BudgetContext::kPollStride; ++i) {
    EXPECT_FALSE(ctx.Expired());
  }
  EXPECT_TRUE(ctx.ChargeNodes(1'000'000'000));
  EXPECT_TRUE(ctx.FitsMemory(int64_t{1} << 50));
  EXPECT_FALSE(ctx.stopped());
}

TEST(BudgetContextTest, FirstPollCatchesAlreadyExpiredDeadline) {
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  BudgetContext ctx(budget, clock.AsFunction());
  // The contract every solver's prompt-return guarantee rests on: an
  // already-expired deadline is noticed on the very first poll.
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kDeadlineExpired);
}

TEST(BudgetContextTest, DeadlineExpiryIsSticky) {
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 10;
  BudgetContext ctx(budget, clock.AsFunction());
  EXPECT_FALSE(ctx.Expired());
  clock.AdvanceMs(100);
  EXPECT_TRUE(ctx.ExpiredNow());
  // Stays expired without further clock movement.
  EXPECT_TRUE(ctx.Expired());
  EXPECT_TRUE(ctx.ExpiredNow());
  EXPECT_TRUE(ctx.stopped());
}

TEST(BudgetContextTest, AmortizedPollReadsClockEveryStride) {
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 10;
  BudgetContext ctx(budget, clock.AsFunction());
  ASSERT_FALSE(ctx.Expired());  // first poll reads the clock
  clock.AdvanceMs(100);         // deadline now long gone
  // The next kPollStride - 1 polls are amortized away without a clock read.
  for (int i = 0; i < BudgetContext::kPollStride - 1; ++i) {
    EXPECT_FALSE(ctx.Expired()) << "poll " << i;
  }
  // The stride-th poll reads the clock and notices.
  EXPECT_TRUE(ctx.Expired());
}

TEST(BudgetContextTest, ExpiredNowBypassesAmortization) {
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 10;
  BudgetContext ctx(budget, clock.AsFunction());
  ASSERT_FALSE(ctx.Expired());
  clock.AdvanceMs(11);
  EXPECT_TRUE(ctx.ExpiredNow());
}

TEST(BudgetContextTest, ElapsedMsFollowsClock) {
  FakeClock clock;
  BudgetContext ctx(SolveBudget{}, clock.AsFunction());
  EXPECT_EQ(ctx.ElapsedMs(), 0);
  clock.AdvanceMs(42);
  EXPECT_EQ(ctx.ElapsedMs(), 42);
}

TEST(BudgetContextTest, NodeBudgetExhausts) {
  SolveBudget budget;
  budget.node_budget = 10;
  BudgetContext ctx(budget);
  EXPECT_TRUE(ctx.ChargeNodes(4));
  EXPECT_TRUE(ctx.ChargeNodes(6));  // exactly at the budget: still fine
  EXPECT_FALSE(ctx.ChargeNodes(1));
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kNodeBudgetExhausted);
  EXPECT_EQ(ctx.nodes_charged(), 11);
  // A latched stop also answers deadline polls, so mixed loops unwind.
  EXPECT_TRUE(ctx.Expired());
}

TEST(BudgetContextTest, MemoryCeiling) {
  SolveBudget budget;
  budget.memory_limit_bytes = 1024;
  BudgetContext ctx(budget);
  EXPECT_TRUE(ctx.FitsMemory(1024));
  EXPECT_FALSE(ctx.FitsMemory(1025));
  EXPECT_EQ(ctx.MemoryLimitOr(777), 1024);
  BudgetContext unlimited{SolveBudget{}};
  EXPECT_EQ(unlimited.MemoryLimitOr(777), 777);
}

TEST(BudgetContextTest, DeclineNotesReadAndClear) {
  BudgetContext ctx{SolveBudget{}};
  EXPECT_EQ(ctx.TakeDecline(), SolveDecline::kNone);
  ctx.NoteMemoryDecline();
  EXPECT_EQ(ctx.TakeDecline(), SolveDecline::kMemoryCapped);
  EXPECT_EQ(ctx.TakeDecline(), SolveDecline::kNone);  // cleared
  ctx.NoteDecline(SolveDecline::kLocalBudgetExhausted);
  EXPECT_EQ(ctx.TakeDecline(), SolveDecline::kLocalBudgetExhausted);
  // Declines never latch a stop: they are per-solver, not per-request.
  EXPECT_FALSE(ctx.stopped());
}

TEST(BudgetContextTest, ForceExpireAfterPolls) {
  BudgetContext ctx{SolveBudget{}};  // no deadline at all
  ctx.ForceExpireAfterPolls(3);
  EXPECT_FALSE(ctx.Expired());
  EXPECT_FALSE(ctx.Expired());
  EXPECT_TRUE(ctx.Expired());  // third poll
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kDeadlineExpired);
}

TEST(BudgetStopTest, Names) {
  EXPECT_STREQ(BudgetStopName(BudgetStop::kNone), "none");
  EXPECT_STREQ(BudgetStopName(BudgetStop::kDeadlineExpired),
               "deadline-expired");
  EXPECT_STREQ(BudgetStopName(BudgetStop::kNodeBudgetExhausted),
               "node-budget-exhausted");
}

}  // namespace
}  // namespace pebblejoin
