#include "graph/hamiltonian.h"

#include <algorithm>

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

// True if `path` is a Hamiltonian path of `g`.
bool IsHamiltonianPath(const Graph& g, const std::vector<int>& path) {
  if (static_cast<int>(path.size()) != g.num_vertices()) return false;
  std::vector<bool> seen(g.num_vertices(), false);
  for (int v : path) {
    if (v < 0 || v >= g.num_vertices() || seen[v]) return false;
    seen[v] = true;
  }
  for (size_t i = 1; i < path.size(); ++i) {
    if (!g.HasEdge(path[i - 1], path[i])) return false;
  }
  return true;
}

TEST(HamiltonianTest, PathGraphHasPath) {
  const Graph g = PathGraph(6).ToGraph();
  EXPECT_TRUE(HasHamiltonianPath(g));
  const auto path = FindHamiltonianPath(g);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(IsHamiltonianPath(g, *path));
}

TEST(HamiltonianTest, StarHasNone) {
  EXPECT_FALSE(HasHamiltonianPath(StarGraph(3).ToGraph()));
  EXPECT_FALSE(FindHamiltonianPath(StarGraph(3).ToGraph()).has_value());
}

TEST(HamiltonianTest, CompleteGraphAlwaysHas) {
  for (int n = 2; n <= 8; ++n) {
    const Graph g = CompleteGraph(n);
    const auto path = FindHamiltonianPath(g);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(IsHamiltonianPath(g, *path));
  }
}

TEST(HamiltonianTest, CycleHasPath) {
  EXPECT_TRUE(HasHamiltonianPath(CycleGraph(7)));
}

TEST(HamiltonianTest, DisconnectedHasNone) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_FALSE(HasHamiltonianPath(g));
}

TEST(HamiltonianTest, SingleVertex) {
  Graph g(1);
  EXPECT_TRUE(HasHamiltonianPath(g));
  const auto path = FindHamiltonianPath(g);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, std::vector<int>{0});
}

TEST(HamiltonianTest, EmptyGraph) {
  EXPECT_FALSE(HasHamiltonianPath(Graph()));
}

TEST(HamiltonianBetweenTest, PathEndpointsOnly) {
  const Graph g = PathGraph(4).ToGraph();  // a path on 5 vertices
  // The only Hamiltonian paths go end to end.
  const auto pairs = HamiltonianPathEndpointPairs(g);
  ASSERT_EQ(pairs.size(), 1u);
  const auto path =
      FindHamiltonianPathBetween(g, pairs[0].first, pairs[0].second);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(IsHamiltonianPath(g, *path));
  EXPECT_EQ(path->front(), pairs[0].first);
  EXPECT_EQ(path->back(), pairs[0].second);
}

TEST(HamiltonianBetweenTest, RespectsEndpoints) {
  const Graph g = CompleteGraph(5);
  const auto path = FindHamiltonianPathBetween(g, 2, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), 2);
  EXPECT_EQ(path->back(), 4);
  EXPECT_TRUE(IsHamiltonianPath(g, *path));
}

TEST(HamiltonianBetweenTest, InfeasiblePair) {
  // In a star, no Hamiltonian path exists at all for m >= 3.
  const Graph g = StarGraph(3).ToGraph();
  EXPECT_FALSE(FindHamiltonianPathBetween(g, 1, 2).has_value());
}

TEST(HamiltonianEndpointPairsTest, CompleteGraphAllPairs) {
  const auto pairs = HamiltonianPathEndpointPairs(CompleteGraph(5));
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2)
}

TEST(HamiltonianTest, AgreesWithBruteForceOnSmallRandomGraphs) {
  // Cross-check the DP against permutation brute force on 7-vertex graphs.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const Graph g = RandomGraph(7, 0.3, seed);
    std::vector<int> perm(7);
    for (int i = 0; i < 7; ++i) perm[i] = i;
    bool brute = false;
    do {
      bool ok = true;
      for (int i = 1; i < 7 && ok; ++i) {
        if (!g.HasEdge(perm[i - 1], perm[i])) ok = false;
      }
      if (ok) brute = true;
    } while (!brute && std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(HasHamiltonianPath(g), brute) << g.DebugString();
  }
}

}  // namespace
}  // namespace pebblejoin
