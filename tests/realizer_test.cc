#include "join/realizers.h"

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "join/join_graph_builder.h"
#include "join/predicates.h"

namespace pebblejoin {
namespace {

TEST(SetContainmentRealizerTest, ReproducesArbitraryGraphs) {
  // Lemma 3.3: every bipartite graph is a set-containment join graph.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const BipartiteGraph target = RandomBipartite(8, 8, 0.3, seed);
    const Realization<IntSet> inst = RealizeAsSetContainment(target);
    const BipartiteGraph rebuilt =
        BuildSetContainmentJoinGraph(inst.left, inst.right);
    EXPECT_TRUE(rebuilt.SameEdgeSet(target)) << seed;
  }
}

TEST(SetContainmentRealizerTest, ReproducesWorstCaseFamily) {
  for (int n = 3; n <= 10; ++n) {
    const BipartiteGraph target = WorstCaseFamily(n);
    const Realization<IntSet> inst = RealizeAsSetContainment(target);
    const BipartiteGraph rebuilt =
        BuildSetContainmentJoinGraph(inst.left, inst.right);
    EXPECT_TRUE(rebuilt.SameEdgeSet(target)) << n;
  }
}

TEST(SetContainmentRealizerTest, LemmaConstructionShape) {
  const BipartiteGraph target = WorstCaseFamily(3);
  const Realization<IntSet> inst = RealizeAsSetContainment(target);
  // Left tuples are singletons {i}.
  for (int i = 0; i < inst.left.size(); ++i) {
    EXPECT_EQ(inst.left.tuple(i).elements(), std::vector<int>{i});
  }
  // Right tuple j is the adjacency set of right vertex j.
  EXPECT_EQ(inst.right.tuple(0).size(), target.RightDegree(0));
}

TEST(SetContainmentRealizerTest, EmptyGraph) {
  const BipartiteGraph target(3, 2);
  const Realization<IntSet> inst = RealizeAsSetContainment(target);
  EXPECT_EQ(
      BuildSetContainmentJoinGraph(inst.left, inst.right).num_edges(), 0);
}

TEST(SpatialRealizerTest, ReproducesWorstCaseFamily) {
  // Lemma 3.4.
  for (int n = 3; n <= 12; ++n) {
    const Realization<Rect> inst = RealizeWorstCaseAsSpatial(n);
    const BipartiteGraph rebuilt =
        BuildOverlapJoinGraph(inst.left, inst.right);
    EXPECT_TRUE(rebuilt.SameEdgeSet(WorstCaseFamily(n))) << n;
  }
}

TEST(SpatialRealizerTest, NestedLoopAgrees) {
  const Realization<Rect> inst = RealizeWorstCaseAsSpatial(5);
  const BipartiteGraph a = BuildOverlapJoinGraph(inst.left, inst.right);
  const BipartiteGraph b =
      BuildJoinGraphNestedLoop(inst.left, inst.right, OverlapPredicate());
  EXPECT_TRUE(a.SameEdgeSet(b));
}

TEST(EquiJoinRealizerTest, RoundTripsCompleteBipartiteUnions) {
  const BipartiteGraph target = DisjointUnion(
      DisjointUnion(CompleteBipartite(2, 3), MatchingGraph(3)),
      CompleteBipartite(1, 4));
  const auto inst = RealizeAsEquiJoin(target);
  ASSERT_TRUE(inst.has_value());
  const BipartiteGraph rebuilt = BuildEquiJoinGraph(inst->left, inst->right);
  EXPECT_TRUE(rebuilt.SameEdgeSet(target));
}

TEST(EquiJoinRealizerTest, HandlesIsolatedVertices) {
  BipartiteGraph target(3, 3);
  target.AddEdge(0, 0);  // left 1,2 and right 1,2 isolated
  const auto inst = RealizeAsEquiJoin(target);
  ASSERT_TRUE(inst.has_value());
  const BipartiteGraph rebuilt = BuildEquiJoinGraph(inst->left, inst->right);
  EXPECT_TRUE(rebuilt.SameEdgeSet(target));
}

TEST(EquiJoinRealizerTest, RefusesNonEquijoinShapes) {
  EXPECT_FALSE(RealizeAsEquiJoin(PathGraph(3)).has_value());
  EXPECT_FALSE(RealizeAsEquiJoin(WorstCaseFamily(3)).has_value());
}

}  // namespace
}  // namespace pebblejoin
