// Seeded randomized property harness over the solver stack.
//
// Each suite draws hundreds of random join graphs and checks the paper's
// invariants on every one:
//
//   - the independent SchemeVerifier accepts every solver's scheme, and the
//     effective cost lands in [m, 2m-1] on connected graphs (Lemma 2.3 +
//     Corollary 2.1), with the dfs-tree solver additionally inside the
//     Theorem 3.1 bound m + floor((m-1)/4);
//   - equijoin-shaped graphs solve perfectly, pi = m (Theorem 3.2);
//   - pi is additive over disjoint unions (Lemma 2.2), both across separate
//     solves and inside one ComponentPebbler drive;
//   - the exact solver's optimum is a true floor under every heuristic and
//     hits the Theorem 3.3 closed form on the worst-case family.
//
// Every check runs under a SCOPED_TRACE carrying the seed, so a failure
// prints the exact instance to replay.

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "pebble/bounds.h"
#include "pebble/cost_model.h"
#include "pebble/scheme_verifier.h"
#include "solver/component_pebbler.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/ils_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"

namespace pebblejoin {
namespace {

// A random connected bipartite instance with 2..5 vertices per side and a
// feasible edge count, all derived from `seed`.
Graph RandomConnectedInstance(uint64_t seed, int* out_m = nullptr) {
  std::mt19937_64 rng(seed);
  const int left = 2 + static_cast<int>(rng() % 4);
  const int right = 2 + static_cast<int>(rng() % 4);
  const int min_m = left + right - 1;
  const int max_m = left * right;
  const int m = min_m + static_cast<int>(rng() % (max_m - min_m + 1));
  if (out_m != nullptr) *out_m = m;
  return RandomConnectedBipartite(left, right, m, rng()).ToGraph();
}

TEST(PropertyHarnessTest, VerifierAcceptsEverySolverOnConnectedGraphs) {
  const GreedyWalkPebbler greedy;
  const DfsTreePebbler dfs_tree;
  const LocalSearchPebbler local_search;
  const IlsPebbler ils;
  const Pebbler* solvers[] = {&greedy, &dfs_tree, &local_search, &ils};

  constexpr int kSeeds = 125;  // x4 solvers = 500 solves
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    int m = 0;
    const Graph g = RandomConnectedInstance(seed, &m);

    for (const Pebbler* solver : solvers) {
      SCOPED_TRACE("solver=" + solver->name());
      const auto order = solver->PebbleConnected(g);
      ASSERT_TRUE(order.has_value());
      const VerificationResult verdict = VerifyEdgeOrder(g, *order);
      ASSERT_TRUE(verdict.valid) << verdict.error;

      // Lemma 2.3 floor and the universal connected ceiling 2m - 1
      // (Corollary 2.1: any connected order jumps at most m - 1 times).
      EXPECT_GE(verdict.effective_cost, m);
      EXPECT_LE(verdict.effective_cost, 2 * m - 1);
      // Connected graph: beta_0 = 1, so pi_hat = pi + 1, and the verifier's
      // costs agree with the O(m) order-based accounting.
      EXPECT_EQ(verdict.hat_cost, verdict.effective_cost + 1);
      EXPECT_EQ(HatCostOfEdgeOrder(g, *order), verdict.hat_cost);

      if (solver->name() == "dfs-tree") {
        // Theorem 3.1: the dfs-tree construction proves its own bound.
        EXPECT_LE(verdict.effective_cost, DfsUpperBoundForConnected(m));
      }
    }
  }
}

TEST(PropertyHarnessTest, EquijoinShapesSolvePerfectly) {
  // Theorem 3.2: every graph whose components are complete bipartite has
  // pi = m, and the sort-merge pebbler achieves it.
  const SortMergePebbler sort_merge;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&sort_merge, &greedy);

  constexpr int kSeeds = 150;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const int blocks = 1 + static_cast<int>(rng() % 4);
    BipartiteGraph g = CompleteBipartite(1 + rng() % 4, 1 + rng() % 4);
    for (int b = 1; b < blocks; ++b) {
      g = DisjointUnion(g, CompleteBipartite(1 + rng() % 4, 1 + rng() % 4));
    }
    const Graph flat = g.ToGraph();

    const PebbleSolution solution = driver.Solve(flat);
    EXPECT_EQ(solution.effective_cost, flat.num_edges());
    EXPECT_EQ(solution.effective_cost, EquijoinOptimalEffectiveCost(flat));
    for (const std::string& used : solution.solver_used) {
      EXPECT_EQ(used, "sort-merge");
    }
  }
}

TEST(PropertyHarnessTest, EffectiveCostIsAdditiveOverDisjointUnions) {
  // Lemma 2.2 as a harness invariant: with a deterministic solver, solving
  // A and B separately costs exactly what solving their disjoint union
  // costs, and the per-component outcomes sum to the drive's total.
  const IlsPebbler ils;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&ils, &greedy);

  constexpr int kSeeds = 120;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const BipartiteGraph a =
        RandomConnectedBipartite(3, 3, 5 + rng() % 5, rng());
    const BipartiteGraph b =
        RandomConnectedBipartite(4, 2, 5 + rng() % 4, rng());
    const Graph flat_a = a.ToGraph();
    const Graph flat_b = b.ToGraph();
    const Graph flat_union = DisjointUnion(a, b).ToGraph();

    const PebbleSolution sol_a = driver.Solve(flat_a);
    const PebbleSolution sol_b = driver.Solve(flat_b);
    const PebbleSolution sol_union = driver.Solve(flat_union);

    EXPECT_EQ(sol_union.effective_cost,
              sol_a.effective_cost + sol_b.effective_cost);

    int64_t outcome_sum = 0;
    for (const SolveOutcome& outcome : sol_union.outcomes) {
      outcome_sum += outcome.effective_cost;
    }
    EXPECT_EQ(outcome_sum, sol_union.effective_cost);
  }
}

TEST(PropertyHarnessTest, ExactOptimumFloorsEveryHeuristic) {
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const DfsTreePebbler dfs_tree;
  const LocalSearchPebbler local_search;
  const IlsPebbler ils;
  const Pebbler* heuristics[] = {&greedy, &dfs_tree, &local_search, &ils};

  constexpr int kSeeds = 120;
  for (uint64_t seed = 1000; seed < 1000 + kSeeds; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const int left = 2 + static_cast<int>(rng() % 2);
    const int right = 2 + static_cast<int>(rng() % 2);
    const int min_m = left + right - 1;
    const int max_m = std::min(9, left * right);
    const int m = min_m + static_cast<int>(rng() % (max_m - min_m + 1));
    const Graph g = RandomConnectedBipartite(left, right, m, rng()).ToGraph();

    const auto exact_order = exact.PebbleConnected(g);
    ASSERT_TRUE(exact_order.has_value());
    const VerificationResult optimal = VerifyEdgeOrder(g, *exact_order);
    ASSERT_TRUE(optimal.valid) << optimal.error;
    EXPECT_GE(optimal.effective_cost, m);
    EXPECT_LE(optimal.effective_cost, DfsUpperBoundForConnected(m));

    for (const Pebbler* heuristic : heuristics) {
      SCOPED_TRACE("solver=" + heuristic->name());
      const auto order = heuristic->PebbleConnected(g);
      ASSERT_TRUE(order.has_value());
      EXPECT_GE(VerifyEdgeOrder(g, *order).effective_cost,
                optimal.effective_cost);
    }
  }
}

TEST(PropertyHarnessTest, WorstCaseFamilyHitsTheorem33ClosedForm) {
  const ExactPebbler exact;
  for (int n : {3, 4}) {
    SCOPED_TRACE(std::string("n=") + std::to_string(n));
    const Graph g = WorstCaseFamily(n).ToGraph();
    const auto order = exact.PebbleConnected(g);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(VerifyEdgeOrder(g, *order).effective_cost,
              WorstCaseFamilyOptimalCost(n));
  }
}

}  // namespace
}  // namespace pebblejoin
