#include "graph/graph_properties.h"

#include "graph/generators.h"
#include "graph/line_graph.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(TwoColorTest, PathIsBipartite) {
  const Graph g = PathGraph(5).ToGraph();
  const auto color = TwoColor(g);
  ASSERT_TRUE(color.has_value());
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE((*color)[g.edge(e).u], (*color)[g.edge(e).v]);
  }
}

TEST(TwoColorTest, OddCycleIsNot) {
  EXPECT_FALSE(TwoColor(CycleGraph(5)).has_value());
  EXPECT_FALSE(IsBipartite(CompleteGraph(3)));
}

TEST(TwoColorTest, EvenCycleIs) {
  EXPECT_TRUE(TwoColor(CycleGraph(6)).has_value());
}

TEST(TwoColorTest, DisconnectedGraphColorsAllComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const auto color = TwoColor(g);
  ASSERT_TRUE(color.has_value());
  EXPECT_NE((*color)[0], (*color)[1]);
  EXPECT_NE((*color)[2], (*color)[3]);
}

TEST(CompleteBipartiteShapeTest, RecognizesEquijoinGraphs) {
  EXPECT_TRUE(ComponentsAreCompleteBipartite(CompleteBipartite(3, 4).ToGraph()));
  EXPECT_TRUE(ComponentsAreCompleteBipartite(MatchingGraph(5).ToGraph()));
  // Disjoint union of two complete bipartite blocks.
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(2, 3), CompleteBipartite(1, 4));
  EXPECT_TRUE(ComponentsAreCompleteBipartite(u.ToGraph()));
}

TEST(CompleteBipartiteShapeTest, RejectsPathsAndStars) {
  EXPECT_FALSE(ComponentsAreCompleteBipartite(PathGraph(3).ToGraph()));
  // A star IS complete bipartite (K_{1,m}).
  EXPECT_TRUE(ComponentsAreCompleteBipartite(StarGraph(4).ToGraph()));
  EXPECT_FALSE(ComponentsAreCompleteBipartite(WorstCaseFamily(3).ToGraph()));
}

TEST(CompleteBipartiteShapeTest, RejectsOddCycles) {
  EXPECT_FALSE(ComponentsAreCompleteBipartite(CycleGraph(5)));
}

TEST(CompleteBipartiteShapeTest, EmptyGraphPasses) {
  EXPECT_TRUE(ComponentsAreCompleteBipartite(Graph(4)));
}

TEST(ClawTest, StarHasClaw) {
  const auto claw = FindInducedClaw(StarGraph(3).ToGraph());
  ASSERT_TRUE(claw.has_value());
  EXPECT_EQ((*claw)[0], 0);  // the center is flat id 0
}

TEST(ClawTest, CompleteGraphHasNone) {
  EXPECT_FALSE(FindInducedClaw(CompleteGraph(6)).has_value());
}

TEST(ClawTest, ClawNeedsNonAdjacentLeaves) {
  // K_{1,3} plus an edge between two leaves: the remaining claw is gone.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  EXPECT_FALSE(FindInducedClaw(g).has_value());
}

TEST(ClawTest, LineGraphsAreClawFree) {
  // Fundamental fact used by Theorem 3.1; checked over random graphs.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const Graph g = RandomGraph(12, 0.3, seed);
    const Graph line = BuildLineGraph(g);
    EXPECT_FALSE(FindInducedClaw(line).has_value()) << g.DebugString();
  }
}

TEST(DegreeTest, MaxDegreeAndHistogram) {
  const Graph g = StarGraph(4).ToGraph();
  EXPECT_EQ(MaxDegree(g), 4);
  const std::vector<int> hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4);  // four leaves
  EXPECT_EQ(hist[4], 1);  // one center
}

TEST(DegreeTest, EmptyGraph) {
  EXPECT_EQ(MaxDegree(Graph(3)), 0);
  EXPECT_EQ(NumNonIsolatedVertices(Graph(3)), 0);
}

TEST(DegreeTest, NumNonIsolated) {
  Graph g(5);
  g.AddEdge(0, 1);
  EXPECT_EQ(NumNonIsolatedVertices(g), 2);
}

}  // namespace
}  // namespace pebblejoin
