#include "join/join_graph_builder.h"

#include "graph/graph_properties.h"
#include "gtest/gtest.h"
#include "join/predicates.h"
#include "join/relation.h"
#include "join/workload.h"

namespace pebblejoin {
namespace {

// --- IntSet ---------------------------------------------------------------

TEST(IntSetTest, OfSortsAndDeduplicates) {
  const IntSet s = IntSet::Of({3, 1, 3, 2, 1});
  EXPECT_EQ(s.elements(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.size(), 3);
}

TEST(IntSetTest, Contains) {
  const IntSet s = IntSet::Of({5, 7});
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(6));
}

TEST(IntSetTest, SubsetSemantics) {
  const IntSet empty;
  const IntSet small = IntSet::Of({1, 3});
  const IntSet big = IntSet::Of({1, 2, 3});
  EXPECT_TRUE(empty.IsSubsetOf(small));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_FALSE(IntSet::Of({4}).IsSubsetOf(big));
}

TEST(IntSetTest, DebugString) {
  EXPECT_EQ(IntSet::Of({2, 1}).DebugString(), "{1,2}");
  EXPECT_EQ(IntSet().DebugString(), "{}");
}

// --- Rect -------------------------------------------------------------------

TEST(RectTest, OverlapBasics) {
  const Rect a{0, 2, 0, 2};
  const Rect b{1, 3, 1, 3};
  const Rect c{5, 6, 5, 6};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
}

TEST(RectTest, TouchingCountsAsOverlap) {
  const Rect a{0, 1, 0, 1};
  const Rect b{1, 2, 0, 1};
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(RectTest, DisjointInOneDimensionOnly) {
  const Rect a{0, 1, 0, 1};
  const Rect b{0, 1, 2, 3};  // same x-range, disjoint y
  EXPECT_FALSE(a.Overlaps(b));
}

// --- Relations ---------------------------------------------------------------

TEST(RelationTest, BasicAccess) {
  KeyRelation r("R", {10, 20});
  r.Add(30);
  EXPECT_EQ(r.name(), "R");
  EXPECT_EQ(r.size(), 3);
  EXPECT_EQ(r.tuple(2), 30);
}

// --- Join graph builders ------------------------------------------------------

TEST(NestedLoopTest, MatchesManualEnumeration) {
  KeyRelation r("R", {1, 2, 2});
  KeyRelation s("S", {2, 3});
  const BipartiteGraph g =
      BuildJoinGraphNestedLoop(r, s, EqualityPredicate());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(EquiJoinBuilderTest, MatchesNestedLoopOnWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 20;
    options.key_match_rate = 0.7;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const BipartiteGraph fast = BuildEquiJoinGraph(w.left, w.right);
    const BipartiteGraph slow =
        BuildJoinGraphNestedLoop(w.left, w.right, EqualityPredicate());
    EXPECT_TRUE(fast.SameEdgeSet(slow)) << seed;
  }
}

TEST(EquiJoinBuilderTest, JoinGraphIsEquijoinShaped) {
  // Theorem 3.2's premise: every equijoin join graph is a disjoint union of
  // complete bipartite graphs.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EquijoinWorkloadOptions options;
    options.num_keys = 15;
    options.max_left_dup = 4;
    options.max_right_dup = 4;
    options.seed = seed;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const BipartiteGraph g = BuildEquiJoinGraph(w.left, w.right);
    EXPECT_TRUE(ComponentsAreCompleteBipartite(g.ToGraph())) << seed;
  }
}

TEST(SetContainmentBuilderTest, MatchesNestedLoopOnWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SetWorkloadOptions options;
    options.num_left = 25;
    options.num_right = 25;
    options.universe = 12;
    options.seed = seed;
    const Realization<IntSet> w = GenerateSetWorkload(options);
    const BipartiteGraph fast =
        BuildSetContainmentJoinGraph(w.left, w.right);
    const BipartiteGraph slow =
        BuildJoinGraphNestedLoop(w.left, w.right, SubsetPredicate());
    EXPECT_TRUE(fast.SameEdgeSet(slow)) << seed;
  }
}

TEST(SetContainmentBuilderTest, EmptyLeftSetJoinsEverything) {
  SetRelation r("R");
  r.Add(IntSet());
  SetRelation s("S");
  s.Add(IntSet::Of({1}));
  s.Add(IntSet());
  const BipartiteGraph g = BuildSetContainmentJoinGraph(r, s);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(SetContainmentBuilderTest, ElementAbsentFromAllRightSets) {
  SetRelation r("R");
  r.Add(IntSet::Of({99}));
  SetRelation s("S");
  s.Add(IntSet::Of({1, 2}));
  EXPECT_EQ(BuildSetContainmentJoinGraph(r, s).num_edges(), 0);
}

TEST(OverlapBuilderTest, MatchesNestedLoopOnWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RectWorkloadOptions options;
    options.num_left = 30;
    options.num_right = 30;
    options.seed = seed;
    const Realization<Rect> w = GenerateRectWorkload(options);
    const BipartiteGraph fast = BuildOverlapJoinGraph(w.left, w.right);
    const BipartiteGraph slow =
        BuildJoinGraphNestedLoop(w.left, w.right, OverlapPredicate());
    EXPECT_TRUE(fast.SameEdgeSet(slow)) << seed;
  }
}

TEST(OverlapBuilderTest, TouchingRectanglesJoin) {
  RectRelation r("R");
  r.Add(Rect{0, 1, 0, 1});
  RectRelation s("S");
  s.Add(Rect{1, 2, 1, 2});  // touches at the corner point (1,1)
  EXPECT_EQ(BuildOverlapJoinGraph(r, s).num_edges(), 1);
}

TEST(OverlapBuilderTest, EmptyRelations) {
  RectRelation r("R");
  RectRelation s("S");
  EXPECT_EQ(BuildOverlapJoinGraph(r, s).num_edges(), 0);
}

TEST(StringEquiJoinTest, MatchesNestedLoop) {
  // The paper's string-key domain, through the generic hash builder.
  StringRelation r("R", {"ann", "bob", "bob", "cid"});
  StringRelation s("S", {"bob", "cid", "cid", "dee"});
  struct StringEq {
    bool operator()(const std::string& a, const std::string& b) const {
      return a == b;
    }
  };
  const BipartiteGraph fast = BuildEquiJoinGraphOver(r, s);
  const BipartiteGraph slow = BuildJoinGraphNestedLoop(r, s, StringEq());
  EXPECT_TRUE(fast.SameEdgeSet(slow));
  EXPECT_EQ(fast.num_edges(), 4);  // bob x2, cid x2
}

TEST(StringEquiJoinTest, ShapeIsEquijoin) {
  StringRelation r("R", {"x", "x", "y"});
  StringRelation s("S", {"x", "y", "y", "z"});
  const BipartiteGraph g = BuildEquiJoinGraphOver(r, s);
  EXPECT_TRUE(ComponentsAreCompleteBipartite(g.ToGraph()));
}

TEST(PredicateClassNameTest, AllNamesDistinct) {
  EXPECT_STREQ(PredicateClassName(PredicateClass::kEquality), "equijoin");
  EXPECT_STREQ(PredicateClassName(PredicateClass::kSpatialOverlap),
               "spatial-overlap");
  EXPECT_STREQ(PredicateClassName(PredicateClass::kSetContainment),
               "set-containment");
  EXPECT_STREQ(PredicateClassName(PredicateClass::kGeneral), "general");
}

}  // namespace
}  // namespace pebblejoin
