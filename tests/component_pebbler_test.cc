#include "solver/component_pebbler.h"

#include "graph/components.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "pebble/scheme_verifier.h"
#include "solver/exact_pebbler.h"
#include "solver/fallback_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"
#include "util/budget.h"
#include "util/thread_pool.h"

namespace pebblejoin {
namespace {

TEST(ComponentPebblerTest, SolvesDisconnectedGraphs) {
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(2, 3), PathGraph(4));
  const Graph g = u.ToGraph();
  const PebbleSolution solution = driver.Solve(g);
  EXPECT_EQ(solution.num_components, 2);
  EXPECT_TRUE(VerifyScheme(g, solution.scheme).valid);
  EXPECT_EQ(solution.effective_cost, solution.hat_cost - 2);
}

TEST(ComponentPebblerTest, FallbackKicksInPerComponent) {
  const SortMergePebbler sort_merge;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&sort_merge, &greedy);
  // One complete-bipartite component, one path (sort-merge refuses it).
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(2, 2), PathGraph(3));
  const PebbleSolution solution = driver.Solve(u.ToGraph());
  ASSERT_EQ(solution.solver_used.size(), 2u);
  EXPECT_EQ(solution.solver_used[0], "sort-merge");
  EXPECT_EQ(solution.solver_used[1], "greedy-walk");
}

TEST(ComponentPebblerDeathTest, NoFallbackAborts) {
  const SortMergePebbler sort_merge;
  const ComponentPebbler driver(&sort_merge, nullptr);
  EXPECT_DEATH(driver.Solve(PathGraph(3).ToGraph()), "no fallback");
}

TEST(ComponentPebblerTest, EmptyGraph) {
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  const PebbleSolution solution = driver.Solve(Graph(5));
  EXPECT_EQ(solution.num_components, 0);
  EXPECT_TRUE(solution.edge_order.empty());
  EXPECT_EQ(solution.hat_cost, 0);
}

TEST(ComponentPebblerTest, AdditivityWithExactSolver) {
  // Lemma 2.2: π(G ⊎ H) = π(G) + π(H). Verified with the exact solver on
  // random unions.
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&exact, &greedy);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const BipartiteGraph a = RandomConnectedBipartite(3, 3, 6, seed);
    const BipartiteGraph b = RandomConnectedBipartite(3, 4, 8, seed + 100);
    const auto pa = exact.OptimalEffectiveCost(a.ToGraph());
    const auto pb = exact.OptimalEffectiveCost(b.ToGraph());
    ASSERT_TRUE(pa.has_value() && pb.has_value());
    const PebbleSolution joint = driver.Solve(DisjointUnion(a, b).ToGraph());
    EXPECT_EQ(joint.effective_cost, *pa + *pb) << seed;
  }
}

TEST(ComponentPebblerTest, MatchingCosts) {
  // Lemma 2.4: a matching with m edges has π̂ = 2m and π = m.
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  for (int m = 1; m <= 6; ++m) {
    const PebbleSolution s = driver.Solve(MatchingGraph(m).ToGraph());
    EXPECT_EQ(s.hat_cost, 2 * m);
    EXPECT_EQ(s.effective_cost, m);
  }
}

TEST(ComponentPebblerTest, MixedSuccessRecordsPerComponentOutcomes) {
  const SortMergePebbler sort_merge;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&sort_merge, &greedy);
  // sort-merge handles the complete-bipartite component, refuses the path
  // and the star-with-pendant; provenance must tell the components apart.
  const BipartiteGraph u = DisjointUnion(
      DisjointUnion(CompleteBipartite(2, 2), PathGraph(3)), WorstCaseFamily(3));
  const Graph g = u.ToGraph();
  const PebbleSolution solution = driver.Solve(g);
  EXPECT_TRUE(VerifyScheme(g, solution.scheme).valid);
  ASSERT_EQ(solution.outcomes.size(), 3u);
  EXPECT_EQ(solution.outcomes[0].winner, "sort-merge");
  EXPECT_EQ(solution.outcomes[0].status, RungStatus::kCompleted);
  ASSERT_EQ(solution.outcomes[0].attempts.size(), 1u);
  // The refused components carry both attempts: the typed refusal and the
  // fallback's success.
  for (int c : {1, 2}) {
    EXPECT_EQ(solution.outcomes[c].winner, "greedy-walk") << c;
    ASSERT_EQ(solution.outcomes[c].attempts.size(), 2u) << c;
    EXPECT_EQ(solution.outcomes[c].attempts[0].solver, "sort-merge");
    EXPECT_EQ(solution.outcomes[c].attempts[0].status,
              RungStatus::kUnsupported);
    EXPECT_EQ(solution.outcomes[c].attempts[1].solver, "greedy-walk");
    EXPECT_EQ(solution.solver_used[c], "greedy-walk");
  }
}

TEST(ComponentPebblerTest, ExpiredDeadlineStillSolvesEveryComponent) {
  const LocalSearchPebbler local;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&local, &greedy);
  const BipartiteGraph u =
      DisjointUnion(WorstCaseFamily(4), CompleteBipartite(3, 3));
  const Graph g = u.ToGraph();
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  BudgetContext ctx(budget, clock.AsFunction());
  // The fallback runs unbudgeted, so the whole request still terminates
  // with a verified scheme.
  const PebbleSolution solution = driver.Solve(g, &ctx);
  EXPECT_TRUE(VerifyScheme(g, solution.scheme).valid);
  ASSERT_EQ(solution.outcomes.size(), 2u);
  for (const SolveOutcome& outcome : solution.outcomes) {
    EXPECT_EQ(outcome.winner, "greedy-walk");
    EXPECT_EQ(outcome.attempts.front().status, RungStatus::kDeadlineExpired);
  }
}

TEST(ComponentPebblerTest, FallbackLadderAsPrimaryReportsWinningRung) {
  const FallbackPebbler ladder;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&ladder, &greedy);
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(2, 2), PathGraph(3));
  const PebbleSolution solution = driver.Solve(u.ToGraph());
  ASSERT_EQ(solution.solver_used.size(), 2u);
  // Both components are tiny, so the exact rung wins and solver_used names
  // the rung, not the ladder wrapper.
  EXPECT_EQ(solution.solver_used[0], "exact");
  EXPECT_EQ(solution.solver_used[1], "exact");
  for (const SolveOutcome& outcome : solution.outcomes) {
    EXPECT_TRUE(outcome.optimal);
  }
}

TEST(ComponentPebblerTest, BorrowedPoolMatchesPrivatePoolByteForByte) {
  // The engine's pool-reuse mode: fanning components across a borrowed
  // ThreadPool must yield the exact solution (order, scheme, costs,
  // provenance) of the historical construct-a-pool-per-call path and of
  // the sequential path.
  const LocalSearchPebbler local;
  const GreedyWalkPebbler greedy;
  const BipartiteGraph u = DisjointUnion(
      DisjointUnion(WorstCaseFamily(4), CompleteBipartite(3, 3)),
      DisjointUnion(PathGraph(5), StarGraph(4)));
  const Graph g = u.ToGraph();

  const ComponentPebbler sequential(&local, &greedy);
  const PebbleSolution base = sequential.Solve(g);

  ComponentPebbler::Options private_pool;
  private_pool.threads = 3;
  const ComponentPebbler with_private(&local, &greedy, private_pool);

  ThreadPool shared(3);
  ComponentPebbler::Options borrowed;
  borrowed.threads = 3;
  borrowed.pool = &shared;
  const ComponentPebbler with_borrowed(&local, &greedy, borrowed);

  for (const ComponentPebbler* driver : {&with_private, &with_borrowed}) {
    const PebbleSolution got = driver->Solve(g);
    EXPECT_EQ(got.edge_order, base.edge_order);
    EXPECT_EQ(got.hat_cost, base.hat_cost);
    EXPECT_EQ(got.effective_cost, base.effective_cost);
    EXPECT_EQ(got.solver_used, base.solver_used);
    ASSERT_EQ(got.outcomes.size(), base.outcomes.size());
    for (size_t c = 0; c < got.outcomes.size(); ++c) {
      EXPECT_EQ(got.outcomes[c].winner, base.outcomes[c].winner);
      EXPECT_EQ(got.outcomes[c].attempts.size(),
                base.outcomes[c].attempts.size());
    }
  }
  // The borrowed pool survives the solves — it is not owned.
  EXPECT_EQ(shared.num_threads(), 3);
}

TEST(ComponentPebblerTest, BorrowedPoolIsDroppedOnPoolWorkers) {
  // A Solve issued from inside a pool worker must not fan out into the
  // same pool (the worker would wait on itself). It degrades to the
  // sequential path — and still produces identical bytes.
  const GreedyWalkPebbler greedy;
  const BipartiteGraph u =
      DisjointUnion(CompleteBipartite(2, 3), PathGraph(4));
  const Graph g = u.ToGraph();
  const ComponentPebbler sequential(&greedy, nullptr);
  const PebbleSolution base = sequential.Solve(g);

  ThreadPool pool(2);
  ComponentPebbler::Options borrowed;
  borrowed.threads = 2;
  borrowed.pool = &pool;
  const ComponentPebbler nested(&greedy, nullptr, borrowed);
  PebbleSolution from_worker;
  pool.Submit([&] { from_worker = nested.Solve(g); });
  pool.Drain();
  EXPECT_EQ(from_worker.edge_order, base.edge_order);
  EXPECT_EQ(from_worker.effective_cost, base.effective_cost);
}

TEST(ComponentPebblerTest, StagedSeamsComposeToSolve) {
  // The pipeline seams — FindComponents, SolveDecomposed, VerifyAndCost —
  // composed by hand must equal the one-call Solve.
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  const BipartiteGraph u =
      DisjointUnion(WorstCaseFamily(3), CompleteBipartite(2, 2));
  const Graph g = u.ToGraph();

  const ComponentDecomposition decomp = FindComponents(g);
  PebbleSolution staged = driver.SolveDecomposed(g, decomp, nullptr);
  // SolveDecomposed leaves verification to the verify stage.
  EXPECT_EQ(staged.hat_cost, 0);
  EXPECT_TRUE(staged.scheme.configs.empty());
  ComponentPebbler::VerifyAndCost(g, &staged);

  const PebbleSolution direct = driver.Solve(g);
  EXPECT_EQ(staged.edge_order, direct.edge_order);
  EXPECT_EQ(staged.hat_cost, direct.hat_cost);
  EXPECT_EQ(staged.effective_cost, direct.effective_cost);
  EXPECT_EQ(staged.jumps, direct.jumps);
  EXPECT_EQ(staged.num_components, direct.num_components);
  EXPECT_TRUE(VerifyScheme(g, staged.scheme).valid);
}

TEST(ComponentPebblerTest, EdgeOrderCoversOriginalIds) {
  const LocalSearchPebbler local;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&local, &greedy);
  const BipartiteGraph u = DisjointUnion(
      DisjointUnion(PathGraph(3), StarGraph(4)), CompleteBipartite(2, 2));
  const Graph g = u.ToGraph();
  const PebbleSolution solution = driver.Solve(g);
  std::vector<bool> seen(g.num_edges(), false);
  for (int e : solution.edge_order) {
    ASSERT_GE(e, 0);
    ASSERT_LT(e, g.num_edges());
    EXPECT_FALSE(seen[e]);
    seen[e] = true;
  }
  EXPECT_EQ(static_cast<int>(solution.edge_order.size()), g.num_edges());
}

}  // namespace
}  // namespace pebblejoin
