#include "graph/components.h"

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace pebblejoin {
namespace {

TEST(ComponentsTest, EmptyGraphHasNoComponents) {
  Graph g(5);
  const ComponentDecomposition d = FindComponents(g);
  EXPECT_EQ(d.num_components, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(d.component_of[v], -1);
}

TEST(ComponentsTest, IsolatedVerticesIgnored) {
  Graph g(4);
  g.AddEdge(0, 1);
  const ComponentDecomposition d = FindComponents(g);
  EXPECT_EQ(d.num_components, 1);
  EXPECT_EQ(d.component_of[2], -1);
  EXPECT_EQ(d.component_of[3], -1);
}

TEST(ComponentsTest, TwoComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  const ComponentDecomposition d = FindComponents(g);
  EXPECT_EQ(d.num_components, 2);
  EXPECT_EQ(d.component_of[0], d.component_of[2]);
  EXPECT_NE(d.component_of[0], d.component_of[3]);
  EXPECT_EQ(d.edges_of[d.component_of[0]].size(), 2u);
  EXPECT_EQ(d.edges_of[d.component_of[3]].size(), 1u);
}

TEST(ComponentsTest, EdgesAssignedToOwningComponent) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const ComponentDecomposition d = FindComponents(g);
  EXPECT_EQ(d.edges_of[d.component_of[0]], std::vector<int>{0});
  EXPECT_EQ(d.edges_of[d.component_of[2]], std::vector<int>{1});
}

TEST(BettiZeroTest, MatchingHasOneComponentPerEdge) {
  const Graph g = MatchingGraph(7).ToGraph();
  EXPECT_EQ(BettiZero(g), 7);
}

TEST(BettiZeroTest, CompleteBipartiteIsConnected) {
  const Graph g = CompleteBipartite(3, 4).ToGraph();
  EXPECT_EQ(BettiZero(g), 1);
}

TEST(IsConnectedTest, RequiresAnEdge) {
  Graph g(3);
  EXPECT_FALSE(IsConnectedIgnoringIsolated(g));
  g.AddEdge(0, 1);
  EXPECT_TRUE(IsConnectedIgnoringIsolated(g));  // vertex 2 is isolated
  Graph h(4);
  h.AddEdge(0, 1);
  h.AddEdge(2, 3);
  EXPECT_FALSE(IsConnectedIgnoringIsolated(h));
}

TEST(ExtractComponentTest, MapsVerticesAndEdgesBack) {
  Graph g(6);
  g.AddEdge(0, 1);   // component A
  g.AddEdge(2, 3);   // component B
  g.AddEdge(3, 4);   // component B
  const ComponentDecomposition d = FindComponents(g);
  const int b = d.component_of[2];
  std::vector<int> vertex_map;
  std::vector<int> edge_map;
  const Graph sub = ExtractComponent(g, d, b, &vertex_map, &edge_map);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_EQ(edge_map, (std::vector<int>{1, 2}));
  // Each sub edge maps to an original edge with corresponding endpoints.
  for (int e = 0; e < sub.num_edges(); ++e) {
    const Graph::Edge& se = sub.edge(e);
    const Graph::Edge& oe = g.edge(edge_map[e]);
    EXPECT_TRUE((vertex_map[se.u] == oe.u && vertex_map[se.v] == oe.v) ||
                (vertex_map[se.u] == oe.v && vertex_map[se.v] == oe.u));
  }
}

TEST(ExtractComponentTest, NullOutputMapsAllowed) {
  Graph g(2);
  g.AddEdge(0, 1);
  const ComponentDecomposition d = FindComponents(g);
  const Graph sub = ExtractComponent(g, d, 0, nullptr, nullptr);
  EXPECT_EQ(sub.num_edges(), 1);
}

TEST(ComponentsTest, RandomGraphComponentsPartitionEdges) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = RandomGraph(30, 0.05, seed);
    const ComponentDecomposition d = FindComponents(g);
    size_t total_edges = 0;
    for (const auto& edges : d.edges_of) total_edges += edges.size();
    EXPECT_EQ(total_edges, static_cast<size_t>(g.num_edges()));
    size_t total_vertices = 0;
    for (const auto& vertices : d.vertices_of) {
      total_vertices += vertices.size();
    }
    int non_isolated = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (g.Degree(v) > 0) ++non_isolated;
    }
    EXPECT_EQ(total_vertices, static_cast<size_t>(non_isolated));
  }
}

}  // namespace
}  // namespace pebblejoin
