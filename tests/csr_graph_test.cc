// The CSR graph core: the frozen view must mirror the mutable Graph
// exactly (same degrees, same insertion-ordered incidence rows, same
// FindEdge answers), travel correctly through copies / mutation /
// ExtractComponent / BuildLineGraph, and — the determinism contract every
// layout-equivalence guarantee rests on — produce line and incidence
// graphs whose neighbor order is identical to the legacy build path,
// without any re-sorting.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_properties.h"
#include "graph/incidence_graph.h"
#include "graph/line_graph.h"

namespace pebblejoin {
namespace {

// A connected random block with a legal edge count for its dimensions.
BipartiteGraph RandomConnectedBlock(std::mt19937_64& rng) {
  const int left = 2 + static_cast<int>(rng() % 3);
  const int right = 2 + static_cast<int>(rng() % 3);
  const int min_m = left + right - 1;
  const int max_m = left * right;
  const int m = min_m + static_cast<int>(rng() % (max_m - min_m + 1));
  return RandomConnectedBipartite(left, right, m, rng());
}

Graph RandomInstance(uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int left = 1 + static_cast<int>(rng() % 6);
  const int right = 1 + static_cast<int>(rng() % 6);
  const int max_m = left * right;
  const int m = static_cast<int>(rng() % (max_m + 1));
  return RandomBipartiteWithEdges(left, right, m, rng()).ToGraph();
}

// The core invariant: every CSR accessor agrees with the Graph it froze.
TEST(CsrGraphTest, MirrorsGraphExactly) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    const Graph g = RandomInstance(seed);
    const CsrGraph csr(g);

    ASSERT_EQ(csr.num_vertices(), static_cast<uint32_t>(g.num_vertices()));
    ASSERT_EQ(csr.num_edges(), static_cast<uint32_t>(g.num_edges()));
    for (int e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(csr.EdgeU(e), static_cast<uint32_t>(g.edge(e).u));
      EXPECT_EQ(csr.EdgeV(e), static_cast<uint32_t>(g.edge(e).v));
      EXPECT_EQ(csr.EdgeOther(e, csr.EdgeU(e)), csr.EdgeV(e));
      EXPECT_EQ(csr.EdgeOther(e, csr.EdgeV(e)), csr.EdgeU(e));
    }
    for (int v = 0; v < g.num_vertices(); ++v) {
      SCOPED_TRACE(std::string("v=") + std::to_string(v));
      ASSERT_EQ(csr.Degree(v), static_cast<uint32_t>(g.Degree(v)));
      // Incidence rows preserve Graph insertion order, element for element.
      const std::vector<int>& incident = g.IncidentEdges(v);
      const CsrSpan row = csr.IncidentEdges(v);
      ASSERT_EQ(row.size, incident.size());
      for (size_t i = 0; i < incident.size(); ++i) {
        EXPECT_EQ(row[i], static_cast<uint32_t>(incident[i]));
      }
      const std::vector<int> neighbors = g.Neighbors(v);
      const CsrSpan nbr = csr.Neighbors(v);
      ASSERT_EQ(nbr.size, neighbors.size());
      for (size_t i = 0; i < neighbors.size(); ++i) {
        EXPECT_EQ(nbr[i], static_cast<uint32_t>(neighbors[i]));
      }
    }
    // Edge probes agree on every pair, present or absent.
    for (int u = 0; u < g.num_vertices(); ++u) {
      for (int v = 0; v < g.num_vertices(); ++v) {
        if (u == v) continue;
        EXPECT_EQ(csr.FindEdge(u, v), static_cast<int64_t>(g.FindEdge(u, v)));
        EXPECT_EQ(csr.HasEdge(u, v), g.HasEdge(u, v));
      }
    }
    EXPECT_GT(csr.arena_bytes(), 0u);
  }
}

TEST(CsrGraphTest, BuildCsrIsIdempotentAndMutationInvalidates) {
  Graph g = CompleteBipartite(3, 4).ToGraph();
  EXPECT_EQ(g.csr(), nullptr);
  g.BuildCsr();
  const CsrGraph* view = g.csr();
  ASSERT_NE(view, nullptr);
  g.BuildCsr();
  EXPECT_EQ(g.csr(), view);  // idempotent: same frozen view

  const int w = g.AddVertices(1);
  EXPECT_EQ(g.csr(), nullptr);  // mutation invalidated the view
  g.BuildCsr();
  ASSERT_NE(g.csr(), nullptr);
  g.AddEdge(0, w);
  EXPECT_EQ(g.csr(), nullptr);
  g.BuildCsr();
  EXPECT_EQ(g.csr()->num_edges(), static_cast<uint32_t>(g.num_edges()));
}

TEST(CsrGraphTest, CopyAndAssignmentPreserveCsrness) {
  Graph frozen = WorstCaseFamily(4).ToGraph();
  frozen.BuildCsr();
  Graph plain = WorstCaseFamily(4).ToGraph();

  // Copying a frozen graph yields a fresh frozen view; copying a plain
  // graph yields none — the layout travels with the graph.
  const Graph frozen_copy(frozen);
  ASSERT_NE(frozen_copy.csr(), nullptr);
  EXPECT_NE(frozen_copy.csr(), frozen.csr());
  EXPECT_EQ(frozen_copy.csr()->num_edges(),
            static_cast<uint32_t>(frozen.num_edges()));
  const Graph plain_copy(plain);
  EXPECT_EQ(plain_copy.csr(), nullptr);

  Graph target;
  target = frozen;
  ASSERT_NE(target.csr(), nullptr);
  target = plain;
  EXPECT_EQ(target.csr(), nullptr);

  // Moves transfer the view as-is.
  Graph moved(std::move(frozen));
  ASSERT_NE(moved.csr(), nullptr);
}

TEST(CsrGraphTest, ExtractComponentPropagatesLayoutAndOrder) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::mt19937_64 rng(seed);
    // A union of two blocks guarantees >= 2 components.
    const BipartiteGraph b =
        DisjointUnion(RandomConnectedBlock(rng), RandomConnectedBlock(rng));
    const Graph legacy = b.ToGraph();
    Graph frozen = b.ToGraph();
    frozen.BuildCsr();

    const ComponentDecomposition decomp_legacy = FindComponents(legacy);
    const ComponentDecomposition decomp_frozen = FindComponents(frozen);
    ASSERT_EQ(decomp_legacy.num_components, decomp_frozen.num_components);
    ASSERT_EQ(decomp_legacy.component_of, decomp_frozen.component_of);
    ASSERT_EQ(decomp_legacy.vertices_of, decomp_frozen.vertices_of);
    ASSERT_EQ(decomp_legacy.edges_of, decomp_frozen.edges_of);

    for (int c = 0; c < decomp_legacy.num_components; ++c) {
      std::vector<int> vmap_l, emap_l, vmap_f, emap_f;
      const Graph sub_l =
          ExtractComponent(legacy, decomp_legacy, c, &vmap_l, &emap_l);
      const Graph sub_f =
          ExtractComponent(frozen, decomp_frozen, c, &vmap_f, &emap_f);
      EXPECT_EQ(vmap_l, vmap_f);
      EXPECT_EQ(emap_l, emap_f);
      // The subgraph of a frozen parent is itself frozen; of a legacy
      // parent, legacy. Structure is identical either way.
      EXPECT_EQ(sub_l.csr(), nullptr);
      ASSERT_NE(sub_f.csr(), nullptr);
      EXPECT_EQ(sub_l.DebugString(), sub_f.DebugString());
    }
  }
}

// The regression this suite pins: line/incidence builds from CSR stream
// the frozen rows directly, and the neighbor order they produce must be
// identical to the legacy build path — no re-sorting on either side.
TEST(CsrGraphTest, LineGraphIdenticalAcrossBuildPaths) {
  for (uint64_t seed = 0; seed < 150; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    const Graph legacy = RandomInstance(seed);
    Graph frozen = RandomInstance(seed);
    frozen.BuildCsr();

    ASSERT_EQ(LineGraphEdgeCount(legacy), LineGraphEdgeCount(frozen));
    const Graph line_legacy = BuildLineGraph(legacy);
    const Graph line_frozen = BuildLineGraph(frozen);
    // Same vertices, same edges, same insertion order — byte-identical
    // structure dump.
    ASSERT_EQ(line_legacy.DebugString(), line_frozen.DebugString());
    // Per-vertex incidence order matches too (DebugString only covers
    // edge order).
    for (int v = 0; v < line_legacy.num_vertices(); ++v) {
      ASSERT_EQ(line_legacy.IncidentEdges(v), line_frozen.IncidentEdges(v));
    }
    // A line graph built from a frozen source inherits the layout, so the
    // solvers that consume it (dfs-tree, exact) stay on the fast path.
    EXPECT_EQ(line_legacy.csr(), nullptr);
    EXPECT_NE(line_frozen.csr(), nullptr);
  }
}

TEST(CsrGraphTest, IncidenceGraphIdenticalAcrossBuildPaths) {
  for (uint64_t seed = 0; seed < 150; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::mt19937_64 rng(seed);
    // BuildIncidenceGraph wants a general graph; keep every node covered.
    const Graph legacy =
        RandomConnectedBoundedDegree(2 + static_cast<int>(rng() % 6), 4,
                                     static_cast<int>(rng() % 5), rng());
    Graph frozen = legacy;
    frozen.BuildCsr();

    const BipartiteGraph b_legacy = BuildIncidenceGraph(legacy);
    const BipartiteGraph b_frozen = BuildIncidenceGraph(frozen);
    ASSERT_EQ(b_legacy.DebugString(), b_frozen.DebugString());
  }
}

TEST(CsrGraphTest, GraphPropertiesIdenticalAcrossLayouts) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    const Graph legacy = RandomInstance(seed);
    Graph frozen = legacy;
    frozen.BuildCsr();

    EXPECT_EQ(TwoColor(legacy), TwoColor(frozen));
    EXPECT_EQ(ComponentsAreCompleteBipartite(legacy),
              ComponentsAreCompleteBipartite(frozen));
    EXPECT_EQ(MaxDegree(legacy), MaxDegree(frozen));
    EXPECT_EQ(DegreeHistogram(legacy), DegreeHistogram(frozen));
    EXPECT_EQ(NumNonIsolatedVertices(legacy), NumNonIsolatedVertices(frozen));
  }
  // Claw detection: stars have claws, cycles and completes do not; the
  // witness (not just the verdict) must match across layouts.
  for (int m : {3, 4, 7}) {
    SCOPED_TRACE(std::string("star m=") + std::to_string(m));
    const Graph legacy = StarGraph(m).ToGraph();
    Graph frozen = legacy;
    frozen.BuildCsr();
    const auto claw_legacy = FindInducedClaw(legacy);
    const auto claw_frozen = FindInducedClaw(frozen);
    ASSERT_TRUE(claw_legacy.has_value());
    ASSERT_TRUE(claw_frozen.has_value());
    EXPECT_EQ(*claw_legacy, *claw_frozen);
  }
  for (int n : {4, 5, 6}) {
    SCOPED_TRACE(std::string("K_n n=") + std::to_string(n));
    Graph frozen = CompleteGraph(n);
    frozen.BuildCsr();
    EXPECT_FALSE(FindInducedClaw(frozen).has_value());
  }
}

}  // namespace
}  // namespace pebblejoin
