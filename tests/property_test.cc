// Parameterized property suites: the library's core invariants swept over
// the cross product of solvers × graph families × sizes × seeds.

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>

#include "graph/generators.h"
#include "graph/hamiltonian.h"
#include "join/interval.h"
#include "join/join_graph_builder.h"
#include "graph/line_graph.h"
#include "gtest/gtest.h"
#include "pebble/bounds.h"
#include "pebble/cost_model.h"
#include "pebble/scheme_verifier.h"
#include "solver/component_pebbler.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"
#include "tsp/held_karp.h"

namespace pebblejoin {
namespace {

// --- Graph families -----------------------------------------------------

enum class Family {
  kCompleteBipartite,
  kPath,
  kStar,
  kEvenCycle,
  kWorstCase,
  kRandomConnected,
  kRandomDisconnected,
  kIntervalJoin,
};

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kCompleteBipartite: return "complete";
    case Family::kPath: return "path";
    case Family::kStar: return "star";
    case Family::kEvenCycle: return "cycle";
    case Family::kWorstCase: return "worstcase";
    case Family::kRandomConnected: return "randconn";
    case Family::kRandomDisconnected: return "randdisc";
    case Family::kIntervalJoin: return "interval";
  }
  return "?";
}

BipartiteGraph MakeFamily(Family family, int scale, uint64_t seed) {
  switch (family) {
    case Family::kCompleteBipartite:
      return CompleteBipartite(scale, scale + 1);
    case Family::kPath:
      return PathGraph(3 * scale);
    case Family::kStar:
      return StarGraph(3 * scale);
    case Family::kEvenCycle:
      return EvenCycle(scale + 1);
    case Family::kWorstCase:
      return WorstCaseFamily(scale + 2);
    case Family::kRandomConnected:
      return RandomConnectedBipartite(scale + 2, scale + 2, 3 * scale + 4,
                                      seed);
    case Family::kRandomDisconnected:
      return DisjointUnion(
          RandomConnectedBipartite(scale + 1, scale + 1, 2 * scale + 1,
                                   seed),
          RandomBipartite(scale + 1, scale + 2, 0.4, seed + 1));
    case Family::kIntervalJoin: {
      IntervalWorkloadOptions options;
      options.num_left = 6 * scale;
      options.num_right = 6 * scale;
      options.space = 10.0 * scale;
      options.seed = seed;
      const IntervalRealization w = GenerateIntervalWorkload(options);
      return BuildIntervalOverlapJoinGraph(w.left, w.right);
    }
  }
  return BipartiteGraph(0, 0);
}

// --- Solvers --------------------------------------------------------------

enum class Solver { kGreedy, kDfsTree, kLocalSearch, kSortMergeOrGreedy };

const char* SolverName(Solver solver) {
  switch (solver) {
    case Solver::kGreedy: return "greedy";
    case Solver::kDfsTree: return "dfstree";
    case Solver::kLocalSearch: return "localsearch";
    case Solver::kSortMergeOrGreedy: return "sortmerge";
  }
  return "?";
}

// --- Suite 1: every solver produces a valid, bound-respecting scheme on
// --- every family at every scale.

using SolverFamilyParam = std::tuple<Solver, Family, int>;

class SolverFamilyPropertyTest
    : public testing::TestWithParam<SolverFamilyParam> {};

TEST_P(SolverFamilyPropertyTest, SchemeValidAndWithinBounds) {
  const auto [solver_kind, family, scale] = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = MakeFamily(family, scale, 100 * seed).ToGraph();
    if (g.num_edges() == 0) continue;

    const GreedyWalkPebbler greedy;
    const DfsTreePebbler dfs;
    const LocalSearchPebbler local;
    const SortMergePebbler sort_merge;
    const Pebbler* primary = nullptr;
    switch (solver_kind) {
      case Solver::kGreedy: primary = &greedy; break;
      case Solver::kDfsTree: primary = &dfs; break;
      case Solver::kLocalSearch: primary = &local; break;
      case Solver::kSortMergeOrGreedy: primary = &sort_merge; break;
    }
    const ComponentPebbler driver(primary, &greedy);
    const PebbleSolution solution = driver.Solve(g);

    // Validity (re-verified independently of the driver's own check).
    const VerificationResult verdict = VerifyScheme(g, solution.scheme);
    ASSERT_TRUE(verdict.valid) << verdict.error;

    // Lemma 2.3 window.
    const PebblingBounds bounds = ComputeBounds(g);
    EXPECT_GE(solution.effective_cost, bounds.lower);
    EXPECT_LE(solution.effective_cost, bounds.upper_general);

    // Theorem 3.1 guarantee for the DFS-tree solver (and anything at least
    // as good).
    if (solver_kind == Solver::kDfsTree ||
        solver_kind == Solver::kLocalSearch) {
      EXPECT_LE(solution.effective_cost, bounds.upper_dfs_bound)
          << FamilyName(family) << " scale=" << scale << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversAllFamilies, SolverFamilyPropertyTest,
    testing::Combine(
        testing::Values(Solver::kGreedy, Solver::kDfsTree,
                        Solver::kLocalSearch, Solver::kSortMergeOrGreedy),
        testing::Values(Family::kCompleteBipartite, Family::kPath,
                        Family::kStar, Family::kEvenCycle,
                        Family::kWorstCase, Family::kRandomConnected,
                        Family::kRandomDisconnected, Family::kIntervalJoin),
        testing::Values(1, 2, 4, 7)),
    [](const testing::TestParamInfo<SolverFamilyParam>& info) {
      return std::string(SolverName(std::get<0>(info.param))) + "_" +
             FamilyName(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// --- Suite 2: named families with closed-form optima — the exact solver
// --- must reproduce them at every size in range.

struct ClosedFormCase {
  const char* name;
  Family family;
  int scale;
  // Expected optimal effective cost as a function of the built graph.
  int64_t (*expected)(const Graph&);
};

int64_t PerfectCost(const Graph& g) { return g.num_edges(); }
int64_t WorstCaseCost(const Graph& g) {
  return WorstCaseFamilyOptimalCost(g.num_edges() / 2);
}

class ClosedFormPropertyTest
    : public testing::TestWithParam<ClosedFormCase> {};

TEST_P(ClosedFormPropertyTest, ExactSolverMatchesClosedForm) {
  const ClosedFormCase& param = GetParam();
  const Graph g = MakeFamily(param.family, param.scale, 7).ToGraph();
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&exact, &greedy);
  const PebbleSolution solution = driver.Solve(g);
  EXPECT_EQ(solution.effective_cost, param.expected(g));
}

INSTANTIATE_TEST_SUITE_P(
    NamedFamilies, ClosedFormPropertyTest,
    testing::Values(
        ClosedFormCase{"complete1", Family::kCompleteBipartite, 1,
                       &PerfectCost},
        ClosedFormCase{"complete3", Family::kCompleteBipartite, 3,
                       &PerfectCost},
        ClosedFormCase{"path2", Family::kPath, 2, &PerfectCost},
        ClosedFormCase{"path5", Family::kPath, 5, &PerfectCost},
        ClosedFormCase{"star2", Family::kStar, 2, &PerfectCost},
        ClosedFormCase{"star5", Family::kStar, 5, &PerfectCost},
        ClosedFormCase{"cycle3", Family::kEvenCycle, 3, &PerfectCost},
        ClosedFormCase{"cycle7", Family::kEvenCycle, 7, &PerfectCost},
        ClosedFormCase{"worst1", Family::kWorstCase, 1, &WorstCaseCost},
        ClosedFormCase{"worst4", Family::kWorstCase, 4, &WorstCaseCost},
        ClosedFormCase{"worst6", Family::kWorstCase, 6, &WorstCaseCost}),
    [](const testing::TestParamInfo<ClosedFormCase>& info) {
      return std::string(info.param.name);
    });

// --- Suite 3: the Section 2.2 bridge, swept over edge counts and seeds.

using BridgeParam = std::tuple<int, uint64_t>;  // (edges, seed)

class BridgePropertyTest : public testing::TestWithParam<BridgeParam> {};

TEST_P(BridgePropertyTest, Propositions21And22) {
  const auto [m, seed] = GetParam();
  const Graph g = RandomConnectedBipartite(4, 4, m, 1000 + seed).ToGraph();
  const ExactPebbler exact;
  const auto pi = exact.OptimalEffectiveCost(g);
  ASSERT_TRUE(pi.has_value());

  const Graph line = BuildLineGraph(g);
  // Proposition 2.1: perfect pebbling iff L(G) has a Hamiltonian path.
  EXPECT_EQ(*pi == g.num_edges(), HasHamiltonianPath(line));
  // Proposition 2.2: optimal L(G) tour cost == π(G) − 1.
  const auto tour = HeldKarpSolve(Tsp12Instance(line));
  ASSERT_TRUE(tour.has_value());
  EXPECT_EQ(tour->cost, *pi - 1);
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCountBySeed, BridgePropertyTest,
    testing::Combine(testing::Values(7, 9, 11, 13, 15),
                     testing::Values<uint64_t>(1, 2, 3)),
    [](const testing::TestParamInfo<BridgeParam>& info) {
      return std::string("m") + std::to_string(std::get<0>(info.param)) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- Suite 4: additivity (Lemma 2.2) across family pairs.

using AdditivityParam = std::tuple<Family, Family>;

class AdditivityPropertyTest
    : public testing::TestWithParam<AdditivityParam> {};

TEST_P(AdditivityPropertyTest, EffectiveCostAddsOverDisjointUnion) {
  const auto [fa, fb] = GetParam();
  const BipartiteGraph a = MakeFamily(fa, 1, 11);
  const BipartiteGraph b = MakeFamily(fb, 1, 22);
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&exact, &greedy);
  const PebbleSolution pa = driver.Solve(a.ToGraph());
  const PebbleSolution pb = driver.Solve(b.ToGraph());
  const PebbleSolution joint = driver.Solve(DisjointUnion(a, b).ToGraph());
  EXPECT_EQ(joint.effective_cost, pa.effective_cost + pb.effective_cost);
}

INSTANTIATE_TEST_SUITE_P(
    FamilyPairs, AdditivityPropertyTest,
    testing::Combine(testing::Values(Family::kCompleteBipartite,
                                     Family::kWorstCase, Family::kStar),
                     testing::Values(Family::kPath, Family::kEvenCycle,
                                     Family::kWorstCase)),
    [](const testing::TestParamInfo<AdditivityParam>& info) {
      return std::string(FamilyName(std::get<0>(info.param))) + "_plus_" +
             FamilyName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pebblejoin
