#!/usr/bin/env bash
# Exit-code and budget-degradation contract of the pebblejoin CLI.
#
# Two invariants:
#   1. Every bad input exits nonzero with a one-line stderr diagnostic —
#      never an abort (exit >= 128 means a signal, i.e. a JP_CHECK crash).
#   2. A zero deadline on a 60-edge worst-case instance still exits 0 and
#      reports the degraded-but-valid scheme's provenance.
set -u

BIN="${PEBBLEJOIN_BIN:?PEBBLEJOIN_BIN must point at the pebblejoin binary}"
FAILURES=0

note_failure() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# expect_fail <description> -- <args...> [<<< stdin]
expect_fail() {
  local desc="$1"; shift; shift  # drop '--'
  local stdin_data="${CLI_STDIN:-}"
  local stderr_file
  stderr_file=$(mktemp)
  printf '%s' "$stdin_data" | "$BIN" "$@" >/dev/null 2>"$stderr_file"
  local status=$?
  if [ "$status" -eq 0 ]; then
    note_failure "$desc: expected nonzero exit, got 0"
  elif [ "$status" -ge 128 ]; then
    note_failure "$desc: crashed with signal (exit $status)"
  elif [ ! -s "$stderr_file" ]; then
    note_failure "$desc: no stderr diagnostic"
  fi
  rm -f "$stderr_file"
}

# --- Bad-input paths: nonzero exit, stderr message, no crash --------------
expect_fail "no command" --
expect_fail "unknown command" -- frobnicate
expect_fail "gen missing family" -- gen
expect_fail "gen unknown family" -- gen hypercube 3
expect_fail "gen worstcase non-numeric" -- gen worstcase xyz
expect_fail "gen worstcase too small" -- gen worstcase 2
expect_fail "gen worstcase trailing junk" -- gen worstcase 3x
expect_fail "gen complete missing arg" -- gen complete 3
expect_fail "gen random m too large" -- gen random 2 2 5 1
expect_fail "gen random disconnected m" -- gen random 3 3 2 1 --connected
expect_fail "solve unknown flag" -- solve --frobnicate
expect_fail "solve unknown solver" -- solve --solver quantum
expect_fail "solve bad deadline" -- solve --deadline-ms -5
expect_fail "solve non-numeric deadline" -- solve --deadline-ms soon
expect_fail "analyze bad predicate" -- analyze --predicate vibes
expect_fail "schedule bad k" -- schedule --k 1
expect_fail "partition bad count" -- partition --fragments 0
expect_fail "realize unknown kind" -- realize polygons
expect_fail "bounds stray flag" -- bounds --verbose

CLI_STDIN="this is not a graph" expect_fail "solve garbage stdin" -- solve
CLI_STDIN="bipartite 2 2 9
0 0
" expect_fail "solve truncated edge list" -- solve
CLI_STDIN="bipartite 2 2 2
0 0
0 0
" expect_fail "solve duplicate edges" -- solve

# --- Good paths round-trip ------------------------------------------------
GRAPH=$("$BIN" gen worstcase 30)
if [ $? -ne 0 ] || [ -z "$GRAPH" ]; then
  note_failure "gen worstcase 30 should succeed"
fi

if ! printf '%s' "$GRAPH" | "$BIN" solve >/dev/null; then
  note_failure "plain solve should exit 0"
fi

if ! printf '%s' "$GRAPH" | "$BIN" bounds >/dev/null; then
  note_failure "bounds should exit 0"
fi

# --- Acceptance: zero deadline on a 60-edge worst case --------------------
OUT=$(printf '%s' "$GRAPH" | "$BIN" solve --deadline-ms 0)
if [ $? -ne 0 ]; then
  note_failure "solve --deadline-ms 0 must still exit 0"
fi
case "$OUT" in
  *deadline-expired*) : ;;
  *) note_failure "degraded solve must report deadline-expired provenance" ;;
esac
# The emitted order must still cover all 60 edges (one id per line after
# the '#' headers).
EDGE_LINES=$(printf '%s\n' "$OUT" | grep -cv '^#')
if [ "$EDGE_LINES" -ne 60 ]; then
  note_failure "degraded solve emitted $EDGE_LINES of 60 edges"
fi

# Budget flags without --solver select the fallback ladder on analyze too.
if ! printf '%s' "$GRAPH" | "$BIN" analyze --deadline-ms 0 >/dev/null; then
  note_failure "analyze --deadline-ms 0 must exit 0"
fi

# Memory-capped solve still succeeds with a valid scheme.
if ! printf '%s' "$GRAPH" | "$BIN" solve --memory-mb 1 >/dev/null; then
  note_failure "solve --memory-mb 1 must exit 0"
fi

# --- Parallel solving: --threads determinism and bad-input contract -------
expect_fail "threads non-numeric" -- analyze --threads many
expect_fail "threads negative" -- analyze --threads -2
expect_fail "threads out of range" -- analyze --threads 9999

MULTI=$("$BIN" gen random 12 12 40 7)
SEQ_OUT=$(printf '%s' "$MULTI" | "$BIN" solve --threads 1)
if [ $? -ne 0 ]; then
  note_failure "solve --threads 1 must exit 0"
fi
PAR_OUT=$(printf '%s' "$MULTI" | "$BIN" solve --threads 4)
if [ $? -ne 0 ]; then
  note_failure "solve --threads 4 must exit 0"
fi
if [ "$SEQ_OUT" != "$PAR_OUT" ]; then
  note_failure "solve output must be identical for --threads 1 and 4"
fi
# 0 = one thread per hardware core; still a valid configuration.
if ! printf '%s' "$MULTI" | "$BIN" analyze --threads 0 >/dev/null; then
  note_failure "analyze --threads 0 must exit 0"
fi

# --- Telemetry surfaces: --json, --stats, --trace-out ---------------------
expect_fail "trace-out missing path" -- analyze --trace-out
CLI_STDIN="this is not a graph" expect_fail "analyze --json garbage stdin" \
  -- analyze --json
CLI_STDIN="$GRAPH" expect_fail "trace-out unwritable path" \
  -- analyze --trace-out /nonexistent-dir/t.json

JSON_OUT=$(printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --json)
if [ $? -ne 0 ]; then
  note_failure "analyze --json must exit 0"
fi
if ! printf '%s' "$JSON_OUT" | python3 -m json.tool >/dev/null; then
  note_failure "analyze --json must emit valid JSON"
fi
case "$JSON_OUT" in
  *bnb_nodes_expanded*budget_polls*) : ;;
  *) note_failure "analyze --json must carry the solver stats" ;;
esac
case "$JSON_OUT" in
  *'"attempts"'*) : ;;
  *) note_failure "analyze --json must carry per-rung attempts" ;;
esac

if ! printf '%s' "$GRAPH" | "$BIN" solve --json >/dev/null; then
  note_failure "solve --json must exit 0"
fi
printf '%s' "$GRAPH" | "$BIN" solve --json | python3 -m json.tool \
  >/dev/null || note_failure "solve --json must emit valid JSON"

TRACE_FILE=$(mktemp)
if ! printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback \
    --trace-out "$TRACE_FILE" >/dev/null; then
  note_failure "analyze --trace-out must exit 0"
fi
if ! python3 -m json.tool <"$TRACE_FILE" >/dev/null; then
  note_failure "--trace-out must write valid JSON"
fi
if ! grep -q traceEvents "$TRACE_FILE"; then
  note_failure "--trace-out must write Chrome trace-event JSON"
fi
rm -f "$TRACE_FILE"

# --stats rides in comments, so the 60-edge order contract must survive it.
STATS_OUT=$(printf '%s' "$GRAPH" | "$BIN" solve --stats)
if [ $? -ne 0 ]; then
  note_failure "solve --stats must exit 0"
fi
case "$STATS_OUT" in
  *rungs_attempted*) : ;;
  *) note_failure "solve --stats must print the solver stats block" ;;
esac
STATS_EDGE_LINES=$(printf '%s\n' "$STATS_OUT" | grep -cv '^#')
if [ "$STATS_EDGE_LINES" -ne 60 ]; then
  note_failure "solve --stats emitted $STATS_EDGE_LINES of 60 edge lines"
fi

# --- Exit-code discipline: one distinct code per failure class ------------
# 64 = usage (no or unknown command), 66 = missing input file, 2 = bad
# flags. Anything >= 128 is a signal, i.e. a crash.
expect_code() {
  local desc="$1" want="$2"; shift; shift
  "$BIN" "$@" >/dev/null 2>&1 </dev/null
  local got=$?
  if [ "$got" -ne "$want" ]; then
    note_failure "$desc: expected exit $want, got $got"
  fi
}
expect_code "no command exits 64" 64
expect_code "unknown command exits 64" 64 frobnicate
expect_code "batch missing input file exits 66" 66 batch --jsonl /nonexistent/in.jsonl
expect_code "bad flag exits 2" 2 analyze --frobnicate
expect_code "bad solver exits 2" 2 analyze --solver quantum

# --- Batch JSONL: corpus round-trip, per-line errors, byte identity -------
TOOLS_DIR="$(cd "$(dirname "$0")/../tools" && pwd)"
WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

expect_fail "batch without --jsonl" -- batch
expect_fail "batch bad admission" -- batch --jsonl - --admission maybe
expect_fail "batch bad threads" -- batch --jsonl - --threads -1

PEBBLEJOIN_BIN="$BIN" "$TOOLS_DIR/make_batch_corpus.sh" 20 \
  > "$WORK_DIR/corpus.jsonl" \
  || note_failure "make_batch_corpus.sh must succeed"
if [ "$(wc -l < "$WORK_DIR/corpus.jsonl")" -ne 20 ]; then
  note_failure "corpus generator must emit 20 lines"
fi

if ! "$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" \
    > "$WORK_DIR/batch_out.jsonl" 2>"$WORK_DIR/batch_err.txt"; then
  note_failure "batch over the corpus must exit 0"
fi
if [ "$(wc -l < "$WORK_DIR/batch_out.jsonl")" -ne 20 ]; then
  note_failure "batch must emit one output line per input line"
fi
grep -q "20 solved" "$WORK_DIR/batch_err.txt" \
  || note_failure "batch summary must report 20 solved"

# Every batch line must be byte-identical (after timing normalization) to
# the single-shot `analyze --json` of the same graph and flags.
python3 - "$BIN" "$TOOLS_DIR" "$WORK_DIR" <<'EOF' \
  || note_failure "batch output must match single-shot analyze --json"
import json, subprocess, sys
sys.path.insert(0, sys.argv[2])
from json_normalize import normalize
bin_path, work = sys.argv[1], sys.argv[3]
with open(work + "/corpus.jsonl") as f:
    lines = [json.loads(l) for l in f]
with open(work + "/batch_out.jsonl") as f:
    outputs = [l.rstrip("\n") for l in f]
assert len(lines) == len(outputs)
for spec, got in zip(lines, outputs):
    args = [bin_path, "analyze", "--json"]
    if "predicate" in spec: args += ["--predicate", spec["predicate"]]
    if "solver" in spec: args += ["--solver", spec["solver"]]
    if "deadline_ms" in spec: args += ["--deadline-ms", str(spec["deadline_ms"])]
    if "node_budget" in spec: args += ["--node-budget", str(spec["node_budget"])]
    if "memory_mb" in spec: args += ["--memory-mb", str(spec["memory_mb"])]
    single = subprocess.run(args, input=spec["graph"], text=True,
                            capture_output=True, check=True).stdout.strip()
    if normalize(single) != normalize(got):
        sys.exit("mismatch for spec: %r" % (spec,))
EOF

# A malformed line yields a per-line error record; the run continues and
# later lines still solve.
GOOD_LINE=$(head -1 "$WORK_DIR/corpus.jsonl")
printf '%s\nnot json at all\n\n%s\n' "$GOOD_LINE" "$GOOD_LINE" \
  > "$WORK_DIR/mixed.jsonl"
if ! "$BIN" batch --jsonl "$WORK_DIR/mixed.jsonl" \
    > "$WORK_DIR/mixed_out.jsonl" 2>"$WORK_DIR/mixed_err.txt"; then
  note_failure "batch with a malformed line must still exit 0"
fi
if [ "$(wc -l < "$WORK_DIR/mixed_out.jsonl")" -ne 3 ]; then
  note_failure "batch must emit 3 lines for 3 non-blank inputs"
fi
sed -n '2p' "$WORK_DIR/mixed_out.jsonl" | grep -q '"line":2,"error"' \
  || note_failure "malformed line must yield a {line,error} record"
sed -n '3p' "$WORK_DIR/mixed_out.jsonl" | grep -q '"edge_order"' \
  || note_failure "batch must keep solving after a malformed line"
grep -q "2 solved, 1 errors" "$WORK_DIR/mixed_err.txt" \
  || note_failure "batch summary must tally the malformed line"

# stdin/stdout plumbing and the fan-out path produce the same result
# (modulo wall clocks).
python3 "$TOOLS_DIR/json_normalize.py" < "$WORK_DIR/batch_out.jsonl" \
  > "$WORK_DIR/seq_norm.jsonl"
"$BIN" batch --jsonl - < "$WORK_DIR/corpus.jsonl" 2>/dev/null \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/stdin_out.jsonl"
cmp -s "$WORK_DIR/seq_norm.jsonl" "$WORK_DIR/stdin_out.jsonl" \
  || note_failure "batch --jsonl - must match the file path"
"$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" --threads 4 2>/dev/null \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/par_out.jsonl"
cmp -s "$WORK_DIR/seq_norm.jsonl" "$WORK_DIR/par_out.jsonl" \
  || note_failure "batch --threads 4 must match sequential output"

# Admission: an exhausted batch pool rejects every line under --admission
# reject, and still solves (degraded) under queue.
"$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" --batch-deadline-ms 0 \
  --admission reject > "$WORK_DIR/rej_out.jsonl" 2>"$WORK_DIR/rej_err.txt" \
  || note_failure "batch --admission reject must exit 0"
grep -q "20 rejected" "$WORK_DIR/rej_err.txt" \
  || note_failure "exhausted pool must reject all 20 lines"
"$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" --batch-deadline-ms 0 \
  --admission queue > "$WORK_DIR/q_out.jsonl" 2>"$WORK_DIR/q_err.txt" \
  || note_failure "batch --admission queue must exit 0"
grep -q "20 solved" "$WORK_DIR/q_err.txt" \
  || note_failure "queued lines must still solve under a dry pool"

# --- Request correlation ids ----------------------------------------------
# A client-supplied "id" leads the response document and threads through
# the journal's request.done event; id-less output never invents one, and
# stripping the echoed id recovers the id-less bytes exactly.
ID_LINE=$(printf '%s' "$GOOD_LINE" | sed 's/}$/, "id": "smoke-1"}/')
printf '%s\n' "$ID_LINE" > "$WORK_DIR/id.jsonl"
if ! "$BIN" batch --jsonl "$WORK_DIR/id.jsonl" \
    --journal "$WORK_DIR/id_journal.jsonl" \
    > "$WORK_DIR/id_out.jsonl" 2>/dev/null; then
  note_failure "batch with a client id must exit 0"
fi
head -1 "$WORK_DIR/id_out.jsonl" | grep -q '^{"id":"smoke-1",' \
  || note_failure "the client id must lead the response document"
grep '"event":"request.done"' "$WORK_DIR/id_journal.jsonl" \
  | grep -q '"id":"smoke-1"' \
  || note_failure "request.done must carry the client id"
grep -q '"id"' "$WORK_DIR/batch_out.jsonl" \
  && note_failure "id-less batch output must carry no id key"
head -1 "$WORK_DIR/id_out.jsonl" | sed 's/^{"id":"smoke-1",/{/' \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/id_stripped.jsonl"
head -1 "$WORK_DIR/seq_norm.jsonl" > "$WORK_DIR/first_norm.jsonl"
cmp -s "$WORK_DIR/id_stripped.jsonl" "$WORK_DIR/first_norm.jsonl" \
  || note_failure "an id must not perturb the solve output"
# A malformed id is a structured per-line error, not a crash.
printf '%s' "$GOOD_LINE" | sed 's/}$/, "id": 7}/' \
  | "$BIN" batch --jsonl - 2>/dev/null \
  | grep -q 'needs a non-empty string' \
  || note_failure "a non-string id must produce a structured error"

# --- Journal, flight recorder, OpenMetrics --------------------------------
expect_fail "journal missing path" -- analyze --journal
expect_fail "metrics-out missing path" -- analyze --metrics-out
expect_fail "flight-recorder bad capacity" -- analyze --flight-recorder 0
expect_fail "flight-recorder non-numeric" -- analyze --flight-recorder many
expect_code "bad log level exits 2" 2 analyze --log-level verbose
expect_code "bad log level exits 2 (batch)" 2 batch --jsonl - --log-level 7
CLI_STDIN="$GRAPH" expect_fail "journal unwritable path" \
  -- analyze --journal /nonexistent-dir/j.jsonl

# A healthy solve at the default info level journals exactly one
# solve.end line; every line is valid JSON and survives normalization.
if ! printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback \
    --journal "$WORK_DIR/j.jsonl" >/dev/null; then
  note_failure "analyze --journal must exit 0"
fi
if [ "$(wc -l < "$WORK_DIR/j.jsonl")" -ne 1 ]; then
  note_failure "healthy solve must journal one line at info level"
fi
grep -q '"event":"solve.end"' "$WORK_DIR/j.jsonl" \
  || note_failure "journal must carry the solve.end event"
python3 -c 'import json,sys
for line in open(sys.argv[1]):
    json.loads(line)' "$WORK_DIR/j.jsonl" \
  || note_failure "journal must be valid JSONL"
python3 "$TOOLS_DIR/json_normalize.py" < "$WORK_DIR/j.jsonl" \
  | grep -q '"ts_us":0' \
  || note_failure "json_normalize.py must zero journal timestamps"

# --log-level debug surfaces the rung-by-rung trail; off silences all.
printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --log-level debug \
  --journal "$WORK_DIR/jd.jsonl" >/dev/null
grep -q '"event":"ladder.rung"' "$WORK_DIR/jd.jsonl" \
  || note_failure "--log-level debug must journal ladder rungs"
printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --log-level off \
  --journal "$WORK_DIR/joff.jsonl" >/dev/null
if [ -s "$WORK_DIR/joff.jsonl" ]; then
  note_failure "--log-level off must journal nothing"
fi

# --journal - streams to stderr.
printf '%s' "$GRAPH" | "$BIN" analyze --journal - \
  >/dev/null 2>"$WORK_DIR/jerr.txt"
grep -q '"event":"solve.end"' "$WORK_DIR/jerr.txt" \
  || note_failure "--journal - must stream events to stderr"

# Acceptance: a forced expiry dumps the flight recorder, whose replayed
# debug events explain the degraded outcome.
printf '%s' "$GRAPH" | "$BIN" analyze --deadline-ms 0 \
  --journal "$WORK_DIR/jdump.jsonl" >/dev/null \
  || note_failure "degraded analyze with --journal must exit 0"
grep -q '"event":"flight_recorder.dump"' "$WORK_DIR/jdump.jsonl" \
  || note_failure "forced expiry must dump the flight recorder"
grep -q '"reason":"deadline-expired"' "$WORK_DIR/jdump.jsonl" \
  || note_failure "the dump must carry the expiry reason"
grep -q '"event":"ladder.rung".*"replay":"debug"' "$WORK_DIR/jdump.jsonl" \
  || note_failure "the dump must replay the debug-level rung trail"
grep -q '"event":"flight_recorder.end"' "$WORK_DIR/jdump.jsonl" \
  || note_failure "the dump must close with flight_recorder.end"

# Acceptance: sequential vs --threads 8 journals are identical modulo
# worker tags and timings (and the echoed thread count).
printf '%s' "$MULTI" | "$BIN" analyze --solver fallback --log-level debug \
  --threads 1 --journal "$WORK_DIR/jt1.jsonl" >/dev/null
printf '%s' "$MULTI" | "$BIN" analyze --solver fallback --log-level debug \
  --threads 8 --journal "$WORK_DIR/jt8.jsonl" >/dev/null
python3 - "$WORK_DIR" <<'EOF' \
  || note_failure "journal must be identical for --threads 1 and 8"
import json, sys
def norm(path):
    out = []
    for line in open(path):
        event = json.loads(line)
        for key in list(event):
            if key in ("ts_us", "worker", "threads") or key.endswith("_us"):
                event.pop(key)
        out.append(json.dumps(event, sort_keys=True))
    return out
work = sys.argv[1]
if norm(work + "/jt1.jsonl") != norm(work + "/jt8.jsonl"):
    sys.exit("journals differ")
EOF

# Acceptance: --metrics-out writes OpenMetrics text that passes the lint.
printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback \
  --metrics-out "$WORK_DIR/m.om" >/dev/null \
  || note_failure "analyze --metrics-out must exit 0"
python3 "$TOOLS_DIR/openmetrics_lint.py" "$WORK_DIR/m.om" \
  || note_failure "--metrics-out output must pass openmetrics_lint.py"
grep -q '^pebblejoin_solve_wall_us_count 1$' "$WORK_DIR/m.om" \
  || note_failure "metrics must carry the solve wall-clock histogram"
CLI_STDIN="$GRAPH" expect_fail "metrics-out unwritable path" \
  -- analyze --metrics-out /nonexistent-dir/m.om

# --- Hardware counters, sampling profiler, --version ----------------------
expect_fail "profile-out missing path" -- analyze --profile-out
expect_code "solve bad perf flag value exits 2" 2 solve --profile-out ""

VERSION_OUT=$("$BIN" --version)
if [ $? -ne 0 ]; then
  note_failure "--version must exit 0"
fi
case "$VERSION_OUT" in
  pebblejoin\ *) : ;;
  *) note_failure "--version must print the build banner, got: $VERSION_OUT" ;;
esac

# Acceptance: --perf-stats exits 0 whether or not the host grants
# perf_event_open, prints the per-stage counter table in comments, and
# keeps the 60-edge order contract intact.
PERF_OUT=$(printf '%s' "$GRAPH" | "$BIN" solve --perf-stats)
if [ $? -ne 0 ]; then
  note_failure "solve --perf-stats must exit 0 even without PMU access"
fi
case "$PERF_OUT" in
  *"perf counters"*) : ;;
  *) note_failure "solve --perf-stats must print the counter status" ;;
esac
case "$PERF_OUT" in
  *instructions*cache_misses*) : ;;
  *) note_failure "solve --perf-stats must print the per-stage table" ;;
esac
PERF_EDGE_LINES=$(printf '%s\n' "$PERF_OUT" | grep -cv '^#')
if [ "$PERF_EDGE_LINES" -ne 60 ]; then
  note_failure "solve --perf-stats emitted $PERF_EDGE_LINES of 60 edges"
fi

# The JSON surface records the availability status: "ok" or
# "unavailable:<reason>" under --perf-stats, the literal "off" without.
printf '%s' "$GRAPH" | "$BIN" analyze --json --perf-stats \
  | grep -Eq '"perf":"(ok|unavailable:[^"]+)"' \
  || note_failure "analyze --json --perf-stats must record perf status"
printf '%s' "$GRAPH" | "$BIN" analyze --json | grep -q '"perf":"off"' \
  || note_failure "perf must default to off in analyze --json"

# --profile-out always produces the folded file, its trailing sample
# comment included, even when the profiler collected zero samples.
printf '%s' "$GRAPH" | "$BIN" solve --profile-out "$WORK_DIR/p.folded" \
  >/dev/null || note_failure "solve --profile-out must exit 0"
[ -f "$WORK_DIR/p.folded" ] \
  || note_failure "--profile-out must write the folded file"
tail -1 "$WORK_DIR/p.folded" | grep -Eq '^# samples [0-9]+ dropped [0-9]+$' \
  || note_failure "folded profile must end with the sample tally comment"
CLI_STDIN="$GRAPH" expect_fail "profile-out unwritable path" \
  -- solve --profile-out /nonexistent-dir/p.folded

# Batch: journal + metrics + live progress ride the same flags.
"$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" --out /dev/null \
  --journal "$WORK_DIR/bj.jsonl" --metrics-out "$WORK_DIR/bm.om" \
  --progress-every-ms 0 2>"$WORK_DIR/bprog.txt" \
  || note_failure "batch with journal+metrics+progress must exit 0"
grep -q '"event":"batch.begin"' "$WORK_DIR/bj.jsonl" \
  || note_failure "batch journal must open with batch.begin"
grep -q '"event":"batch.end"' "$WORK_DIR/bj.jsonl" \
  || note_failure "batch journal must close with batch.end"
grep -q '"event":"solve.end".*"line":1' "$WORK_DIR/bj.jsonl" \
  || note_failure "batch journal events must carry their input line"
grep -Eq '^batch: 20/20 .*p50=[0-9]+ms p95=[0-9]+ms' "$WORK_DIR/bprog.txt" \
  || note_failure "batch progress must report done/total and latency"
python3 "$TOOLS_DIR/openmetrics_lint.py" "$WORK_DIR/bm.om" \
  || note_failure "batch --metrics-out output must pass the lint"

# A rejected batch line dumps the batch-level flight recorder.
"$BIN" batch --jsonl "$WORK_DIR/corpus.jsonl" --out /dev/null \
  --batch-deadline-ms 0 --admission reject \
  --journal "$WORK_DIR/brj.jsonl" 2>/dev/null \
  || note_failure "rejecting batch with --journal must exit 0"
grep -q '"event":"batch.reject"' "$WORK_DIR/brj.jsonl" \
  || note_failure "a rejected line must journal batch.reject"
grep -q '"reason":"batch-line-rejected"' "$WORK_DIR/brj.jsonl" \
  || note_failure "the first rejection must dump the flight recorder"

# --- Graph layout: --layout flag, differential identity, stage counters ---
expect_code "bad layout exits 2" 2 analyze --layout columnar
expect_fail "solve bad layout" -- solve --layout rowwise

# The layout changes memory layout only: default (csr) and --layout legacy
# output must be byte-identical, on both the order and JSON surfaces.
DENSE=$("$BIN" gen complete 12 12)
if [ $? -ne 0 ] || [ -z "$DENSE" ]; then
  note_failure "gen complete 12 12 should succeed"
fi
CSR_OUT=$(printf '%s' "$DENSE" | "$BIN" solve --layout csr)
LEGACY_OUT=$(printf '%s' "$DENSE" | "$BIN" solve --layout legacy)
DEFAULT_OUT=$(printf '%s' "$DENSE" | "$BIN" solve)
if [ "$CSR_OUT" != "$LEGACY_OUT" ]; then
  note_failure "solve output must be identical for --layout csr and legacy"
fi
if [ "$DEFAULT_OUT" != "$CSR_OUT" ]; then
  note_failure "solve must default to the csr layout"
fi
printf '%s' "$DENSE" | "$BIN" analyze --json --layout csr \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/lay_csr.json"
printf '%s' "$DENSE" | "$BIN" analyze --json --layout legacy \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/lay_leg.json"
cmp -s "$WORK_DIR/lay_csr.json" "$WORK_DIR/lay_leg.json" \
  || note_failure "analyze --json must be layout-invariant after normalization"

# --perf-stats on the dense instance surfaces the per-stage counter table,
# with a build row covering the CSR freeze; the stats.perf gate keeps the
# default solve output free of the counter block entirely.
DENSE_PERF=$(printf '%s' "$DENSE" | "$BIN" solve --perf-stats)
if [ $? -ne 0 ]; then
  note_failure "dense solve --perf-stats must exit 0"
fi
printf '%s\n' "$DENSE_PERF" | grep -q '^#.*build' \
  || note_failure "dense solve --perf-stats must print the build stage row"
printf '%s' "$DENSE" | "$BIN" analyze --json --perf-stats \
  | grep -q '"stage_build_cycles"' \
  || note_failure "analyze --json --perf-stats must carry stage_build_* counters"
printf '%s\n' "$DEFAULT_OUT" | grep -q 'perf counters' \
  && note_failure "default solve must not print the perf counter block"

# --- Ladder planner: --planner / --cost-model -----------------------------
# The default `--planner ladder` is the inert blind ladder: its output must
# be indistinguishable from not passing the flag at all (after timing
# normalization). `--planner calibrated` must surface plan provenance.
expect_code "bad planner exits 2" 2 analyze --planner quantum
expect_code "cost-model missing file exits 66" 66 \
  analyze --cost-model /nonexistent/cost_model.json
printf 'not json' > "$WORK_DIR/bad_model.json"
expect_code "malformed cost-model exits 2" 2 \
  analyze --cost-model "$WORK_DIR/bad_model.json"

printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --json \
  | python3 "$TOOLS_DIR/json_normalize.py" > "$WORK_DIR/plan_default.json"
printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --planner ladder \
  --json | python3 "$TOOLS_DIR/json_normalize.py" \
  > "$WORK_DIR/plan_ladder.json"
cmp -s "$WORK_DIR/plan_default.json" "$WORK_DIR/plan_ladder.json" \
  || note_failure "--planner ladder must match the default byte-for-byte"
grep -q '"plan"' "$WORK_DIR/plan_ladder.json" \
  && note_failure "blind ladder output must not carry plan provenance"

CAL_OUT=$(printf '%s' "$GRAPH" \
  | "$BIN" analyze --solver fallback --planner calibrated --json)
if [ $? -ne 0 ]; then
  note_failure "analyze --planner calibrated must exit 0"
fi
case "$CAL_OUT" in
  *'"plan"'*'"predicted_solver"'*) : ;;
  *) note_failure "--planner calibrated --json must carry plan provenance" ;;
esac
case "$CAL_OUT" in
  *'"planner_plans"'*) : ;;
  *) note_failure "--planner calibrated must count planner_plans in stats" ;;
esac

# The committed calibration artifact must load cleanly through the flag.
REPO_ROOT="$(cd "$TOOLS_DIR/.." && pwd)"
if [ -f "$REPO_ROOT/cost_model.json" ]; then
  printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback \
    --planner calibrated --cost-model "$REPO_ROOT/cost_model.json" \
    >/dev/null || note_failure "committed cost_model.json must load"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke check(s) failed" >&2
  exit 1
fi
echo "cli smoke checks passed"
