#!/usr/bin/env bash
# Exit-code and budget-degradation contract of the pebblejoin CLI.
#
# Two invariants:
#   1. Every bad input exits nonzero with a one-line stderr diagnostic —
#      never an abort (exit >= 128 means a signal, i.e. a JP_CHECK crash).
#   2. A zero deadline on a 60-edge worst-case instance still exits 0 and
#      reports the degraded-but-valid scheme's provenance.
set -u

BIN="${PEBBLEJOIN_BIN:?PEBBLEJOIN_BIN must point at the pebblejoin binary}"
FAILURES=0

note_failure() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# expect_fail <description> -- <args...> [<<< stdin]
expect_fail() {
  local desc="$1"; shift; shift  # drop '--'
  local stdin_data="${CLI_STDIN:-}"
  local stderr_file
  stderr_file=$(mktemp)
  printf '%s' "$stdin_data" | "$BIN" "$@" >/dev/null 2>"$stderr_file"
  local status=$?
  if [ "$status" -eq 0 ]; then
    note_failure "$desc: expected nonzero exit, got 0"
  elif [ "$status" -ge 128 ]; then
    note_failure "$desc: crashed with signal (exit $status)"
  elif [ ! -s "$stderr_file" ]; then
    note_failure "$desc: no stderr diagnostic"
  fi
  rm -f "$stderr_file"
}

# --- Bad-input paths: nonzero exit, stderr message, no crash --------------
expect_fail "no command" --
expect_fail "unknown command" -- frobnicate
expect_fail "gen missing family" -- gen
expect_fail "gen unknown family" -- gen hypercube 3
expect_fail "gen worstcase non-numeric" -- gen worstcase xyz
expect_fail "gen worstcase too small" -- gen worstcase 2
expect_fail "gen worstcase trailing junk" -- gen worstcase 3x
expect_fail "gen complete missing arg" -- gen complete 3
expect_fail "gen random m too large" -- gen random 2 2 5 1
expect_fail "gen random disconnected m" -- gen random 3 3 2 1 --connected
expect_fail "solve unknown flag" -- solve --frobnicate
expect_fail "solve unknown solver" -- solve --solver quantum
expect_fail "solve bad deadline" -- solve --deadline-ms -5
expect_fail "solve non-numeric deadline" -- solve --deadline-ms soon
expect_fail "analyze bad predicate" -- analyze --predicate vibes
expect_fail "schedule bad k" -- schedule --k 1
expect_fail "partition bad count" -- partition --fragments 0
expect_fail "realize unknown kind" -- realize polygons
expect_fail "bounds stray flag" -- bounds --verbose

CLI_STDIN="this is not a graph" expect_fail "solve garbage stdin" -- solve
CLI_STDIN="bipartite 2 2 9
0 0
" expect_fail "solve truncated edge list" -- solve
CLI_STDIN="bipartite 2 2 2
0 0
0 0
" expect_fail "solve duplicate edges" -- solve

# --- Good paths round-trip ------------------------------------------------
GRAPH=$("$BIN" gen worstcase 30)
if [ $? -ne 0 ] || [ -z "$GRAPH" ]; then
  note_failure "gen worstcase 30 should succeed"
fi

if ! printf '%s' "$GRAPH" | "$BIN" solve >/dev/null; then
  note_failure "plain solve should exit 0"
fi

if ! printf '%s' "$GRAPH" | "$BIN" bounds >/dev/null; then
  note_failure "bounds should exit 0"
fi

# --- Acceptance: zero deadline on a 60-edge worst case --------------------
OUT=$(printf '%s' "$GRAPH" | "$BIN" solve --deadline-ms 0)
if [ $? -ne 0 ]; then
  note_failure "solve --deadline-ms 0 must still exit 0"
fi
case "$OUT" in
  *deadline-expired*) : ;;
  *) note_failure "degraded solve must report deadline-expired provenance" ;;
esac
# The emitted order must still cover all 60 edges (one id per line after
# the '#' headers).
EDGE_LINES=$(printf '%s\n' "$OUT" | grep -cv '^#')
if [ "$EDGE_LINES" -ne 60 ]; then
  note_failure "degraded solve emitted $EDGE_LINES of 60 edges"
fi

# Budget flags without --solver select the fallback ladder on analyze too.
if ! printf '%s' "$GRAPH" | "$BIN" analyze --deadline-ms 0 >/dev/null; then
  note_failure "analyze --deadline-ms 0 must exit 0"
fi

# Memory-capped solve still succeeds with a valid scheme.
if ! printf '%s' "$GRAPH" | "$BIN" solve --memory-mb 1 >/dev/null; then
  note_failure "solve --memory-mb 1 must exit 0"
fi

# --- Parallel solving: --threads determinism and bad-input contract -------
expect_fail "threads non-numeric" -- analyze --threads many
expect_fail "threads negative" -- analyze --threads -2
expect_fail "threads out of range" -- analyze --threads 9999

MULTI=$("$BIN" gen random 12 12 40 7)
SEQ_OUT=$(printf '%s' "$MULTI" | "$BIN" solve --threads 1)
if [ $? -ne 0 ]; then
  note_failure "solve --threads 1 must exit 0"
fi
PAR_OUT=$(printf '%s' "$MULTI" | "$BIN" solve --threads 4)
if [ $? -ne 0 ]; then
  note_failure "solve --threads 4 must exit 0"
fi
if [ "$SEQ_OUT" != "$PAR_OUT" ]; then
  note_failure "solve output must be identical for --threads 1 and 4"
fi
# 0 = one thread per hardware core; still a valid configuration.
if ! printf '%s' "$MULTI" | "$BIN" analyze --threads 0 >/dev/null; then
  note_failure "analyze --threads 0 must exit 0"
fi

# --- Telemetry surfaces: --json, --stats, --trace-out ---------------------
expect_fail "trace-out missing path" -- analyze --trace-out
CLI_STDIN="this is not a graph" expect_fail "analyze --json garbage stdin" \
  -- analyze --json
CLI_STDIN="$GRAPH" expect_fail "trace-out unwritable path" \
  -- analyze --trace-out /nonexistent-dir/t.json

JSON_OUT=$(printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback --json)
if [ $? -ne 0 ]; then
  note_failure "analyze --json must exit 0"
fi
if ! printf '%s' "$JSON_OUT" | python3 -m json.tool >/dev/null; then
  note_failure "analyze --json must emit valid JSON"
fi
case "$JSON_OUT" in
  *bnb_nodes_expanded*budget_polls*) : ;;
  *) note_failure "analyze --json must carry the solver stats" ;;
esac
case "$JSON_OUT" in
  *'"attempts"'*) : ;;
  *) note_failure "analyze --json must carry per-rung attempts" ;;
esac

if ! printf '%s' "$GRAPH" | "$BIN" solve --json >/dev/null; then
  note_failure "solve --json must exit 0"
fi
printf '%s' "$GRAPH" | "$BIN" solve --json | python3 -m json.tool \
  >/dev/null || note_failure "solve --json must emit valid JSON"

TRACE_FILE=$(mktemp)
if ! printf '%s' "$GRAPH" | "$BIN" analyze --solver fallback \
    --trace-out "$TRACE_FILE" >/dev/null; then
  note_failure "analyze --trace-out must exit 0"
fi
if ! python3 -m json.tool <"$TRACE_FILE" >/dev/null; then
  note_failure "--trace-out must write valid JSON"
fi
if ! grep -q traceEvents "$TRACE_FILE"; then
  note_failure "--trace-out must write Chrome trace-event JSON"
fi
rm -f "$TRACE_FILE"

# --stats rides in comments, so the 60-edge order contract must survive it.
STATS_OUT=$(printf '%s' "$GRAPH" | "$BIN" solve --stats)
if [ $? -ne 0 ]; then
  note_failure "solve --stats must exit 0"
fi
case "$STATS_OUT" in
  *rungs_attempted*) : ;;
  *) note_failure "solve --stats must print the solver stats block" ;;
esac
STATS_EDGE_LINES=$(printf '%s\n' "$STATS_OUT" | grep -cv '^#')
if [ "$STATS_EDGE_LINES" -ne 60 ]; then
  note_failure "solve --stats emitted $STATS_EDGE_LINES of 60 edge lines"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke check(s) failed" >&2
  exit 1
fi
echo "cli smoke checks passed"
