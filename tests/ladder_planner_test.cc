#include "solver/ladder_planner.h"

#include <cmath>
#include <string>

#include "graph/features.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "pebble/cost_model.h"
#include "solver/fallback_pebbler.h"
#include "solver/solve_outcome.h"
#include "util/budget.h"

namespace pebblejoin {
namespace {

GraphFeatures FeaturesOf(const BipartiteGraph& g) {
  return ExtractGraphFeatures(g.ToGraph());
}

// A model whose predictions this test controls exactly: only the
// intercept is set, so predicted_us = exp(intercept) regardless of the
// instance.
CostModel FlatModel(double exact_us, double ils_us, double ls_us) {
  CostModel model;
  model.version = 1;
  model.exact.intercept = std::log(exact_us);
  model.ils.intercept = std::log(ils_us);
  model.local_search.intercept = std::log(ls_us);
  return model;
}

TEST(RungModelTest, PredictsClampedExponential) {
  RungModel rung;
  rung.intercept = std::log(500.0);
  // exp(log(500)) may land one ulp under 500 before truncation.
  EXPECT_NEAR(rung.PredictUs(GraphFeatures{}), 500, 1);
  rung.intercept = -10.0;  // exp() < 1 clamps to the 1us floor
  EXPECT_EQ(rung.PredictUs(GraphFeatures{}), 1);
}

TEST(LadderPlannerTest, DrainedDeadlineSkipsToTerminator) {
  const LadderPlanner planner(FlatModel(100.0, 100.0, 100.0));
  const LadderPlan plan = planner.Plan(FeaturesOf(WorstCaseFamily(5)), 0);
  EXPECT_TRUE(plan.active);
  EXPECT_EQ(plan.start_rung, kNumPlannedRungs);  // dfs-tree
}

TEST(LadderPlannerTest, CheapExactIsAttemptedWithCap) {
  // Predicted 2ms against a 100ms deadline: well inside the half share.
  const LadderPlanner planner(FlatModel(2000.0, 100.0, 50.0));
  const LadderPlan plan = planner.Plan(FeaturesOf(WorstCaseFamily(5)), 100);
  EXPECT_TRUE(plan.active);
  EXPECT_EQ(plan.start_rung, kPlanExact);
  // Cap is max(1ms floor, 2 x ~2ms prediction) — and far below the
  // 100ms the blind ladder would have let the exact rung burn.
  EXPECT_GE(plan.exact_cap_ms, 3);
  EXPECT_LE(plan.exact_cap_ms, 4);
  EXPECT_NEAR(plan.predicted_us[kPlanExact], 2000, 1);
}

TEST(LadderPlannerTest, ExpensiveExactIsSkipped) {
  // Predicted 80ms against a 100ms deadline: over the half share, so the
  // descent starts at ils and records the predicted saving.
  const LadderPlanner planner(FlatModel(80'000.0, 100.0, 50.0));
  const LadderPlan plan = planner.Plan(FeaturesOf(WorstCaseFamily(5)), 100);
  EXPECT_TRUE(plan.active);
  EXPECT_EQ(plan.start_rung, kPlanIls);
  EXPECT_EQ(plan.exact_cap_ms, -1);
  EXPECT_GT(plan.budget_saved_ms, 0);
}

TEST(LadderPlannerTest, UnlimitedDeadlineUsesFixedExactCap) {
  const GraphFeatures f = FeaturesOf(WorstCaseFamily(5));
  // 1s predicted: under the 10s unlimited cap, attempt.
  EXPECT_EQ(LadderPlanner(FlatModel(1e6, 10.0, 10.0)).Plan(f, -1).start_rung,
            kPlanExact);
  // 100s predicted: over it, skip to ils even with no deadline.
  EXPECT_EQ(LadderPlanner(FlatModel(1e8, 10.0, 10.0)).Plan(f, -1).start_rung,
            kPlanIls);
}

TEST(LadderPlannerTest, BuiltInModelSkipsGrindBandUnderTightDeadline) {
  // The committed calibration: the Held-Karp band (worstcase n=8, m=16,
  // measured ~13ms) must be predicted too big for a 5ms deadline but
  // attempted under a generous one — this is the dispatch the whole
  // feature exists for.
  const LadderPlanner planner;  // CostModel::BuiltIn()
  const GraphFeatures f = FeaturesOf(WorstCaseFamily(8));
  EXPECT_GT(planner.Plan(f, 5).start_rung, kPlanExact);
  EXPECT_EQ(planner.Plan(f, 1000).start_rung, kPlanExact);
  // Extrapolation direction: predicted exact burn must grow with the
  // family size, not average the fast branch-and-bound band into "cheap".
  const int64_t small = planner.model().exact.PredictUs(f);
  const int64_t big =
      planner.model().exact.PredictUs(FeaturesOf(WorstCaseFamily(30)));
  EXPECT_GT(big, small);
}

TEST(PlannedRungNameTest, NamesEveryStartRung) {
  EXPECT_STREQ(PlannedRungName(kPlanExact), "exact");
  EXPECT_STREQ(PlannedRungName(kPlanIls), "ils");
  EXPECT_STREQ(PlannedRungName(kPlanLocalSearch), "local-search");
  EXPECT_STREQ(PlannedRungName(kNumPlannedRungs), "dfs-tree");
}

TEST(CostModelJsonTest, RoundTripsThroughWriterShape) {
  const std::string text = R"({
    "version": 3,
    "generated_by": "tools/calibrate_cost_model.py",
    "feature_order": ["a", "b", "c", "d", "e", "f"],
    "rungs": {
      "exact": {"intercept": 1.5, "weights": [1, 2, 3, 4, 5, 6],
                "rows": 99, "rmse_log": 0.5},
      "ils": {"intercept": -0.25, "weights": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]},
      "local-search": {"intercept": 0.0, "weights": [0, 0, 0, 0, 0, 0]}
    }
  })";
  CostModel model;
  std::string error;
  ASSERT_TRUE(ParseCostModelJson(text, &model, &error)) << error;
  EXPECT_EQ(model.version, 3);
  EXPECT_DOUBLE_EQ(model.exact.intercept, 1.5);
  EXPECT_DOUBLE_EQ(model.exact.weights[5], 6.0);
  EXPECT_DOUBLE_EQ(model.ils.intercept, -0.25);
  EXPECT_DOUBLE_EQ(model.local_search.intercept, 0.0);
}

TEST(CostModelJsonTest, RejectsMalformedDocuments) {
  CostModel model;
  std::string error;
  // Not JSON at all.
  EXPECT_FALSE(ParseCostModelJson("nope", &model, &error));
  // Missing a rung.
  EXPECT_FALSE(ParseCostModelJson(
      R"({"version": 1, "rungs": {"exact":
          {"intercept": 0, "weights": [0,0,0,0,0,0]}}})",
      &model, &error));
  // Unknown rung name.
  EXPECT_FALSE(ParseCostModelJson(
      R"({"version": 1, "rungs": {"exact":
          {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "ils": {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "local-search": {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "greedy": {"intercept": 0, "weights": [0,0,0,0,0,0]}}})",
      &model, &error));
  // Wrong weight count.
  EXPECT_FALSE(ParseCostModelJson(
      R"({"version": 1, "rungs": {"exact":
          {"intercept": 0, "weights": [0,0,0]},
          "ils": {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "local-search": {"intercept": 0, "weights": [0,0,0,0,0,0]}}})",
      &model, &error));
  // Non-positive version.
  EXPECT_FALSE(ParseCostModelJson(
      R"({"version": 0, "rungs": {"exact":
          {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "ils": {"intercept": 0, "weights": [0,0,0,0,0,0]},
          "local-search": {"intercept": 0, "weights": [0,0,0,0,0,0]}}})",
      &model, &error));
}

TEST(CostModelJsonTest, MissingFileReportsError) {
  CostModel model;
  std::string error;
  EXPECT_FALSE(
      LoadCostModelFile("/nonexistent/cost_model.json", &model, &error));
  EXPECT_FALSE(error.empty());
}

// End-to-end through the ladder: a planner-configured FallbackPebbler must
// match the blind ladder's cost on instances where exact is attempted, and
// must not regress when the planner skips exact (ils recovers the same
// scheme on these families; the calibration sweep pins that empirically).
TEST(CalibratedLadderTest, MatchesBlindQualityOnSmallInstances) {
  const LadderPlanner planner;  // committed coefficients
  FallbackPebbler blind;
  FallbackPebbler::Options opts;
  opts.planner = &planner;
  FallbackPebbler planned(opts);
  for (int n : {3, 5, 8}) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    SolveOutcome blind_outcome;
    const auto a = blind.PebbleWithOutcome(g, nullptr, &blind_outcome);
    SolveOutcome planned_outcome;
    const auto b = planned.PebbleWithOutcome(g, nullptr, &planned_outcome);
    ASSERT_TRUE(a.has_value()) << n;
    ASSERT_TRUE(b.has_value()) << n;
    EXPECT_EQ(HatCostOfEdgeOrder(g, *a), HatCostOfEdgeOrder(g, *b)) << n;
    EXPECT_FALSE(blind_outcome.plan.active) << n;
    EXPECT_TRUE(planned_outcome.plan.active) << n;
  }
}

}  // namespace
}  // namespace pebblejoin
