// Fault-injection tests for cooperative cancellation and the degradation
// ladder: every solver must terminate promptly under an already-expired
// deadline, budget-cut incumbents must always verify, and the
// FallbackPebbler must emit a verifier-accepted scheme no matter which
// ceilings bind.

#include "solver/fallback_pebbler.h"

#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "pebble/cost_model.h"
#include "pebble/pebbling_scheme.h"
#include "pebble/scheme_verifier.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/ils_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"
#include "util/budget.h"

namespace pebblejoin {
namespace {

bool OrderIsValid(const Graph& g, const std::vector<int>& order) {
  if (static_cast<int>(order.size()) != g.num_edges()) return false;
  return VerifyScheme(g, SchemeFromEdgeOrder(g, order)).valid;
}

// Every solver, polled with an already-expired deadline, must return on its
// first poll: either a typed refusal (nullopt) or a valid order.
TEST(ExpiredDeadlineTest, EverySolverReturnsPromptly) {
  const ExactPebbler exact;
  const IlsPebbler ils;
  const LocalSearchPebbler local_search;
  const DfsTreePebbler dfs_tree;
  const GreedyWalkPebbler greedy;
  const SortMergePebbler sort_merge;
  const FallbackPebbler fallback;
  const std::vector<const Pebbler*> solvers = {
      &exact, &ils, &local_search, &dfs_tree,
      &greedy, &sort_merge, &fallback};

  const Graph g = WorstCaseFamily(8).ToGraph();
  for (const Pebbler* solver : solvers) {
    FakeClock clock;
    SolveBudget budget;
    budget.deadline_ms = 0;  // expired before the solve starts
    BudgetContext ctx(budget, clock.AsFunction());
    const auto order = solver->PebbleConnected(g, &ctx);
    if (order.has_value()) {
      EXPECT_TRUE(OrderIsValid(g, *order)) << solver->name();
    } else {
      EXPECT_EQ(ctx.stop_reason(), BudgetStop::kDeadlineExpired)
          << solver->name();
    }
  }
}

TEST(ExpiredDeadlineTest, LadderStillEmitsValidScheme) {
  const FallbackPebbler fallback;
  const Graph g = WorstCaseFamily(8).ToGraph();
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  BudgetContext ctx(budget, clock.AsFunction());
  SolveOutcome outcome;
  const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  // The budgeted rungs were all cut by the deadline; the unbudgeted
  // dfs-tree terminator answered.
  EXPECT_EQ(outcome.winner, "dfs-tree");
  EXPECT_TRUE(outcome.degraded());
  EXPECT_EQ(outcome.degradation, RungStatus::kDeadlineExpired);
  ASSERT_GE(outcome.attempts.size(), 2u);
  EXPECT_EQ(outcome.attempts.front().solver, "exact");
  EXPECT_EQ(outcome.attempts.front().status, RungStatus::kDeadlineExpired);
  EXPECT_EQ(outcome.attempts.back().status, RungStatus::kCompleted);
  // Theorem 3.1: the terminator still honors m + floor((m-1)/4).
  const int64_t m = g.num_edges();
  EXPECT_LE(outcome.effective_cost, m + (m - 1) / 4);
  EXPECT_GE(outcome.effective_cost, outcome.lower_bound);
}

TEST(ExpiredDeadlineTest, MemoryCapDescendsToGreedySafetyNet) {
  // Deadline cuts the budgeted rungs AND the memory ceiling is too small to
  // materialize L(G) for the terminator: only the greedy walk remains.
  const FallbackPebbler fallback;
  const Graph g = StarGraph(40).ToGraph();  // L(G) = K_40, 780 line edges
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  budget.memory_limit_bytes = 1024;  // 64 line-graph edges at most
  BudgetContext ctx(budget, clock.AsFunction());
  SolveOutcome outcome;
  const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  EXPECT_EQ(outcome.winner, "greedy-walk");
  EXPECT_TRUE(outcome.degraded());
  // Provenance names both cuts: the deadline on the way down, then the
  // memory cap on the terminator.
  bool saw_memory_cap = false;
  for (const RungAttempt& attempt : outcome.attempts) {
    if (attempt.status == RungStatus::kMemoryCapped) saw_memory_cap = true;
  }
  EXPECT_TRUE(saw_memory_cap);
  // Greedy walk guarantee: at most 2m.
  EXPECT_LE(outcome.effective_cost, 2 * g.num_edges());
}

TEST(NodeBudgetTest, ExactDeclinesAndLadderRecovers) {
  // This random instance has m = 26 > kMaxHeldKarpNodes, so exact dispatches
  // to branch and bound — and unlike the worst-case family (whose deficiency
  // bound closes the gap at the root), proving it needs hundreds of search
  // nodes, so the 10-node budget genuinely exhausts mid-search.
  FallbackPebbler::Options options;
  options.exact.bnb_node_budget = 10;
  const FallbackPebbler fallback(options);
  const Graph g = RandomConnectedBipartite(7, 7, 26, 9).ToGraph();
  BudgetContext ctx{SolveBudget{}};
  SolveOutcome outcome;
  const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  ASSERT_FALSE(outcome.attempts.empty());
  EXPECT_EQ(outcome.attempts.front().solver, "exact");
  EXPECT_EQ(outcome.attempts.front().status, RungStatus::kBudgetExhausted);
  EXPECT_EQ(outcome.degradation, RungStatus::kBudgetExhausted);
  EXPECT_EQ(outcome.winner, "ils");  // next rung down answered
  EXPECT_FALSE(outcome.optimal);
}

TEST(NodeBudgetTest, SharedBudgetStopsBranchAndBound) {
  const ExactPebbler exact;
  const Graph g = RandomConnectedBipartite(7, 7, 26, 9).ToGraph();
  SolveBudget budget;
  budget.node_budget = 5;
  BudgetContext ctx(budget);
  SolveOutcome outcome;
  const auto order = exact.PebbleWithOutcome(g, &ctx, &outcome);
  // An exact solver never returns an unproven incumbent.
  EXPECT_FALSE(order.has_value());
  EXPECT_EQ(ctx.stop_reason(), BudgetStop::kNodeBudgetExhausted);
  EXPECT_EQ(outcome.status, RungStatus::kBudgetExhausted);
}

TEST(MemoryCapTest, DfsTreeDeclinesWithTypedStatus) {
  const DfsTreePebbler dfs;
  const Graph g = StarGraph(40).ToGraph();
  SolveBudget budget;
  budget.memory_limit_bytes = 1024;
  BudgetContext ctx(budget);
  SolveOutcome outcome;
  const auto order = dfs.PebbleWithOutcome(g, &ctx, &outcome);
  EXPECT_FALSE(order.has_value());
  EXPECT_EQ(outcome.status, RungStatus::kMemoryCapped);
  EXPECT_FALSE(ctx.stopped());  // a decline is not a request-wide stop
}

TEST(MemoryCapTest, HeldKarpRefusesOversizedTable) {
  // 22 edges need a 2^22 * 22 byte table; a 1 MiB ceiling refuses it and
  // the exact solver falls through to branch and bound, which still proves
  // optimality on this small instance.
  const ExactPebbler exact;
  const Graph g = PathGraph(22).ToGraph();
  SolveBudget budget;
  budget.memory_limit_bytes = int64_t{1} << 20;
  BudgetContext ctx(budget);
  const auto order = exact.PebbleConnected(g, &ctx);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  // A path is pebbled end to end with zero jumps.
  EXPECT_EQ(JumpsOfEdgeOrder(g, *order), 0);
}

// Forced expiry at every poll index: whatever the cut point, a solver
// either refuses or returns a verifier-valid order — never a partial one.
TEST(ForcedExpiryTest, IncumbentsAreNeverInvalid) {
  const IlsPebbler ils;
  const LocalSearchPebbler local_search;
  const GreedyWalkPebbler greedy;
  const std::vector<const Pebbler*> solvers = {&ils, &local_search, &greedy};
  const Graph g = WorstCaseFamily(6).ToGraph();
  for (const Pebbler* solver : solvers) {
    for (int64_t cut : {1, 2, 3, 5, 8, 13, 21, 50, 200, 1000}) {
      BudgetContext ctx{SolveBudget{}};
      ctx.ForceExpireAfterPolls(cut);
      const auto order = solver->PebbleConnected(g, &ctx);
      if (order.has_value()) {
        EXPECT_TRUE(OrderIsValid(g, *order))
            << solver->name() << " cut at poll " << cut;
      }
    }
  }
}

TEST(ForcedExpiryTest, LadderSurvivesEveryCutPoint) {
  const FallbackPebbler fallback;
  const Graph g = WorstCaseFamily(6).ToGraph();
  for (int64_t cut : {1, 2, 3, 5, 8, 13, 21, 50, 200, 1000}) {
    BudgetContext ctx{SolveBudget{}};
    ctx.ForceExpireAfterPolls(cut);
    SolveOutcome outcome;
    const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
    ASSERT_TRUE(order.has_value()) << "cut at poll " << cut;
    EXPECT_TRUE(OrderIsValid(g, *order)) << "cut at poll " << cut;
    EXPECT_FALSE(outcome.winner.empty());
  }
}

TEST(FallbackTest, UnbudgetedSmallInstanceIsOptimal) {
  const FallbackPebbler fallback;
  const Graph g = WorstCaseFamily(4).ToGraph();  // m = 8, exact territory
  SolveOutcome outcome;
  const auto order = fallback.PebbleWithOutcome(g, nullptr, &outcome);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  EXPECT_EQ(outcome.winner, "exact");
  EXPECT_TRUE(outcome.optimal);
  EXPECT_FALSE(outcome.degraded());
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_EQ(outcome.attempts[0].status, RungStatus::kOptimal);
  // Theorem 3.3: pi(G_n) = 2.5 n - 1.
  EXPECT_EQ(outcome.effective_cost, 9);
}

TEST(FallbackTest, OversizedInstanceFallsToHeuristics) {
  FallbackPebbler::Options options;
  options.exact.max_edges = 10;
  const FallbackPebbler fallback(options);
  const Graph g = WorstCaseFamily(10).ToGraph();  // m = 20 > max_edges
  SolveOutcome outcome;
  const auto order = fallback.PebbleWithOutcome(g, nullptr, &outcome);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(OrderIsValid(g, *order));
  EXPECT_EQ(outcome.attempts.front().status, RungStatus::kUnsupported);
  EXPECT_EQ(outcome.winner, "ils");
  // Declining on size is the normal regime for heuristics, not degradation.
  EXPECT_FALSE(outcome.degraded());
}

TEST(FallbackTest, SummaryNamesRungsAndWinner) {
  const FallbackPebbler fallback;
  const Graph g = WorstCaseFamily(8).ToGraph();
  FakeClock clock;
  SolveBudget budget;
  budget.deadline_ms = 0;
  BudgetContext ctx(budget, clock.AsFunction());
  SolveOutcome outcome;
  ASSERT_TRUE(fallback.PebbleWithOutcome(g, &ctx, &outcome).has_value());
  const std::string summary = outcome.Summary();
  EXPECT_NE(summary.find("exact:deadline-expired"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("winner dfs-tree"), std::string::npos) << summary;
  EXPECT_NE(summary.find("degraded: deadline-expired"), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace pebblejoin
