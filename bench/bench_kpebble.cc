// E14 (k-pebble / buffer pool) — how extra memory buys back the jumps.
//
// Two sweeps over the k-pebble generalization (k buffer slots; k = 2 is
// the paper's game):
//  (a) fetches vs k on the worst-case family and on random graphs — the
//      Gₙ hardness evaporates at k = 3 (one slot pins the hub), matching
//      the intuition that the paper's results are about *two*-buffer
//      scheduling;
//  (b) replacement policies at fixed k — LRU vs random vs min-remaining-
//      degree, the buffer-manager analogue of the ablation benches.

#include <cstdio>

#include "graph/generators.h"
#include "kpebble/k_pebble_game.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

int64_t Fetches(const Graph& g, int k, EvictionPolicy policy) {
  KPebbleOptions options;
  options.k = k;
  options.policy = policy;
  options.seed = 5;
  return ScheduleKPebbles(g, options).fetches;
}

void RunBufferSweep() {
  std::printf(
      "E14a: fetches vs buffer slots k (min-remaining-degree policy)\n\n");
  TablePrinter table({"graph", "m", "lower_bound", "k=2", "k=3", "k=4",
                      "k=8"});
  auto add = [&](const char* name, const Graph& g) {
    table.AddRow({name, FormatInt(g.num_edges()),
                  FormatInt(KPebbleFetchLowerBound(g)),
                  FormatInt(Fetches(g, 2,
                                    EvictionPolicy::kMinRemainingDegree)),
                  FormatInt(Fetches(g, 3,
                                    EvictionPolicy::kMinRemainingDegree)),
                  FormatInt(Fetches(g, 4,
                                    EvictionPolicy::kMinRemainingDegree)),
                  FormatInt(Fetches(g, 8,
                                    EvictionPolicy::kMinRemainingDegree))});
  };
  add("G_8", WorstCaseFamily(8).ToGraph());
  add("G_16", WorstCaseFamily(16).ToGraph());
  add("G_32", WorstCaseFamily(32).ToGraph());
  add("rand 8x8 m24", RandomConnectedBipartite(8, 8, 24, 3).ToGraph());
  add("rand 10x10 m40", RandomConnectedBipartite(10, 10, 40, 4).ToGraph());
  add("K_8,8", CompleteBipartite(8, 8).ToGraph());
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: G_n collapses to its lower bound at k = 3 (the\n"
      "hub stays resident); dense graphs keep improving with k; k = 2\n"
      "matches the two-pebble game costs.\n");
}

void RunPolicySweep() {
  std::printf("\nE14b: replacement policies at k = 4\n\n");
  TablePrinter table(
      {"graph", "lower_bound", "min-degree", "lru", "random"});
  auto add = [&](const char* name, const Graph& g) {
    table.AddRow({name, FormatInt(KPebbleFetchLowerBound(g)),
                  FormatInt(Fetches(g, 4,
                                    EvictionPolicy::kMinRemainingDegree)),
                  FormatInt(Fetches(g, 4, EvictionPolicy::kLru)),
                  FormatInt(Fetches(g, 4, EvictionPolicy::kRandom))});
  };
  add("G_16", WorstCaseFamily(16).ToGraph());
  add("rand 8x8 m30", RandomConnectedBipartite(8, 8, 30, 7).ToGraph());
  add("rand 12x12 m50", RandomConnectedBipartite(12, 12, 50, 8).ToGraph());
  add("K_10,10", CompleteBipartite(10, 10).ToGraph());
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: min-remaining-degree <= lru <= random on most\n"
      "rows (knowing the future workload beats recency).\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunBufferSweep();
  pebblejoin::RunPolicySweep();
  return 0;
}
