// E10 (ablation) — how much each design choice buys.
//
// Three ablations called out in DESIGN.md:
//   (a) branch-and-bound lower bounds: component bound and deficiency bound
//       (the B⁺/B⁻ argument of Theorem 3.3) on vs off, measured in nodes
//       expanded to prove optimality;
//   (b) local-search seeding: greedy walk vs DFS-tree vs matching cover as
//       the starting tour;
//   (c) local-search move set: 2-opt only vs 2-opt + Or-opt.

#include <cstdio>

#include "graph/generators.h"
#include "graph/line_graph.h"
#include "pebble/cost_model.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "tsp/branch_and_bound.h"
#include "tsp/local_search.h"
#include "tsp/matching_path_cover.h"
#include "tsp/tour.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunBoundAblation() {
  std::printf(
      "E10a: branch-and-bound pruning power (nodes expanded, lower is "
      "better)\n\n");
  TablePrinter table({"n", "m", "both_bounds", "component_only",
                      "deficiency_only", "no_bounds", "optimal_jumps"});
  // The G_n family forces ⌈n/2⌉ − 1 jumps (Theorem 3.3), so the incumbent
  // can never be trivially optimal and the search actually runs.
  for (int n : {6, 7, 8, 9}) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    const int m = g.num_edges();
    const Tsp12Instance line(BuildLineGraph(g));

    auto run = [&](bool component, bool deficiency) {
      BranchAndBoundOptions options;
      options.use_component_bound = component;
      options.use_deficiency_bound = deficiency;
      options.node_budget = 100'000'000;  // cap: 'no_bounds' exceeds this
      return BranchAndBoundSolve(line, options);
    };
    const BranchAndBoundResult both = run(true, true);
    const BranchAndBoundResult component_only = run(true, false);
    const BranchAndBoundResult deficiency_only = run(false, true);
    const BranchAndBoundResult neither = run(false, false);

    table.AddRow({FormatInt(n), FormatInt(m),
                  FormatInt(both.nodes_expanded),
                  FormatInt(component_only.nodes_expanded),
                  FormatInt(deficiency_only.nodes_expanded),
                  neither.proven_optimal
                      ? FormatInt(neither.nodes_expanded)
                      : (FormatInt(neither.nodes_expanded) + " (budget)"),
                  FormatInt(both.best.jumps)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: both bounds together expand the fewest nodes;\n"
      "removing either inflates the search, removing both most of all.\n"
      "All four columns prove the same optimum.\n");
}

void RunSeedAblation() {
  std::printf("\nE10b: local-search seed quality (final jumps after "
              "2-opt/Or-opt)\n\n");
  TablePrinter table({"m", "seed=greedy", "seed=dfs", "seed=matching",
                      "seed_jumps_g", "seed_jumps_d", "seed_jumps_m"});
  const GreedyWalkPebbler greedy;
  const DfsTreePebbler dfs;
  for (int m : {16, 24, 32, 48}) {
    const Graph g =
        RandomConnectedBipartite(m / 3, m / 3, m, 23 + m).ToGraph();
    const Tsp12Instance line(BuildLineGraph(g));
    const LocalSearchOptions options;

    Tour greedy_tour = *greedy.PebbleConnected(g);
    Tour dfs_tour = *dfs.PebbleConnected(g);
    Tour matching_tour = MatchingPathCoverTour(line, 1);
    const int64_t jg = TourJumps(line, greedy_tour);
    const int64_t jd = TourJumps(line, dfs_tour);
    const int64_t jm = TourJumps(line, matching_tour);
    LocalSearchImprove(line, &greedy_tour, options);
    LocalSearchImprove(line, &dfs_tour, options);
    LocalSearchImprove(line, &matching_tour, options);

    table.AddRow({FormatInt(m), FormatInt(TourJumps(line, greedy_tour)),
                  FormatInt(TourJumps(line, dfs_tour)),
                  FormatInt(TourJumps(line, matching_tour)), FormatInt(jg),
                  FormatInt(jd), FormatInt(jm)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: final columns nearly identical (local search\n"
      "washes out the seed), while raw seed jumps differ.\n");
}

void RunMoveSetAblation() {
  std::printf("\nE10c: local-search move set (jumps removed from a greedy "
              "seed)\n\n");
  TablePrinter table({"m", "seed_jumps", "2opt_only", "2opt+oropt"});
  const GreedyWalkPebbler greedy;
  for (int m : {20, 30, 40}) {
    int64_t seed_total = 0;
    int64_t two_total = 0;
    int64_t both_total = 0;
    const int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Graph g =
          RandomConnectedBipartite(m / 3, m / 3, m, 1000 * m + trial)
              .ToGraph();
      const Tsp12Instance line(BuildLineGraph(g));
      const Tour seed = *greedy.PebbleConnected(g);
      seed_total += TourJumps(line, seed);

      Tour two = seed;
      LocalSearchOptions options;
      TwoOptImprove(line, &two, options);
      two_total += TourJumps(line, two);

      Tour both = seed;
      LocalSearchImprove(line, &both, options);
      both_total += TourJumps(line, both);
    }
    table.AddRow({FormatInt(m), FormatDouble(1.0 * seed_total / kTrials, 2),
                  FormatDouble(1.0 * two_total / kTrials, 2),
                  FormatDouble(1.0 * both_total / kTrials, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunBoundAblation();
  pebblejoin::RunSeedAblation();
  pebblejoin::RunMoveSetAblation();
  return 0;
}
