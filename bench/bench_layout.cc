// E21 — Cache-conscious layout: CSR + arena + bitset hot loops vs the
// legacy vector-of-vectors graph.
//
// Two sweeps, both differential (every row runs the *same* instance
// through both layouts and asserts the answers are identical before
// reporting the speedup):
//  (a) full engine solves (AnalyzerOptions::layout = legacy vs csr) on
//      dense complete-bipartite, dense random, and Theorem 3.3 worst-case
//      instances — the end-to-end number the layout work is judged by;
//  (b) the k-pebble scheduler in isolation (its edge-selection loop is the
//      single hottest scan in the repo: legacy re-walks a deleted[] array
//      per pick, CSR word-scans a liveness bitset).
//
// The cache is flushed between timed runs by streaming through a buffer
// far larger than LLC, so rows measure cold-cache behavior — the regime
// the paper's page-fetch model cares about — rather than whichever layout
// happened to run second.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/analyzer.h"
#include "graph/generators.h"
#include "kpebble/k_pebble_game.h"
#include "obs/bench_report.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

constexpr int kRepetitions = 5;

// Streams a buffer much larger than any LLC in write mode, evicting both
// layouts' working sets so each timed run starts cold.
void ClearCache() {
  static std::vector<uint64_t> sink(32 * 1024 * 1024);  // 256 MiB
  for (size_t i = 0; i < sink.size(); i += 8) sink[i] += 1;
}

// Best-of-N cold-cache wall time for one closure.
template <typename Fn>
int64_t TimeColdMicros(const Fn& fn) {
  int64_t best = -1;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ClearCache();
    Stopwatch watch;
    fn();
    const int64_t us = watch.ElapsedMicros();
    if (best < 0 || us < best) best = us;
  }
  return best;
}

std::string SpeedupCell(int64_t legacy_us, int64_t csr_us) {
  if (csr_us <= 0) return "-";
  return FormatDouble(static_cast<double>(legacy_us) /
                          static_cast<double>(csr_us),
                      2) +
         "x";
}

void RunEngineSweep(BenchReport* report) {
  std::printf(
      "E21a: full engine solve, legacy vs csr layout (best of %d, cold "
      "cache)\n\n",
      kRepetitions);
  TablePrinter table({"family", "m", "legacy_us", "csr_us", "speedup",
                      "cost_legacy", "cost_csr", "identical"});

  auto add = [&](const char* name, const BipartiteGraph& g,
                 SolverChoice solver) {
    AnalyzerOptions legacy_options;
    legacy_options.layout = GraphLayout::kLegacy;
    legacy_options.solver = solver;
    AnalyzerOptions csr_options = legacy_options;
    csr_options.layout = GraphLayout::kCsr;
    const JoinAnalyzer legacy(legacy_options);
    const JoinAnalyzer csr(csr_options);

    const JoinAnalysis a_legacy =
        legacy.AnalyzeJoinGraph(g, PredicateClass::kGeneral);
    const JoinAnalysis a_csr = csr.AnalyzeJoinGraph(g, PredicateClass::kGeneral);
    const bool identical =
        a_legacy.solution.effective_cost == a_csr.solution.effective_cost &&
        a_legacy.solution.edge_order == a_csr.solution.edge_order;
    if (!identical) {
      std::fprintf(stderr, "FATAL: layout divergence on %s\n", name);
      std::exit(1);
    }

    const int64_t legacy_us = TimeColdMicros(
        [&] { legacy.AnalyzeJoinGraph(g, PredicateClass::kGeneral); });
    const int64_t csr_us = TimeColdMicros(
        [&] { csr.AnalyzeJoinGraph(g, PredicateClass::kGeneral); });
    table.AddRow({name, FormatInt(a_csr.output_size), FormatInt(legacy_us),
                  FormatInt(csr_us), SpeedupCell(legacy_us, csr_us),
                  FormatInt(a_legacy.solution.effective_cost),
                  FormatInt(a_csr.solution.effective_cost),
                  identical ? "yes" : "NO"});
  };

  // Complete bipartite under kAuto routes to the closed-form sort-merge
  // path (no hot loops; the row pins parity, not speedup). The greedy rows
  // force the same dense instances through the walk's cursor scans.
  add("K_32,32 auto", CompleteBipartite(32, 32), SolverChoice::kAuto);
  add("K_32,32 greedy", CompleteBipartite(32, 32), SolverChoice::kGreedyWalk);
  add("K_64,64 greedy", CompleteBipartite(64, 64), SolverChoice::kGreedyWalk);
  add("K_96,96 greedy", CompleteBipartite(96, 96), SolverChoice::kGreedyWalk);
  add("rand 24x24 m=400", RandomConnectedBipartite(24, 24, 400, 21),
      SolverChoice::kAuto);
  add("rand 32x32 m=700", RandomConnectedBipartite(32, 32, 700, 22),
      SolverChoice::kAuto);
  add("G_128", WorstCaseFamily(128), SolverChoice::kAuto);
  add("G_256", WorstCaseFamily(256), SolverChoice::kAuto);
  add("G_512", WorstCaseFamily(512), SolverChoice::kAuto);
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("engine_solve", table);
  std::printf(
      "\nExpected shape: identical = yes throughout — the layout changes\n"
      "where bytes live, never what the solver does. The dense random and\n"
      "G_n rows route through local-search/ILS adjacency probes (O(1)\n"
      "bitset matrix vs O(deg) list walk) and clear 1.5x by an order of\n"
      "magnitude; the single-pass greedy/sort-merge rows are overhead-\n"
      "bound either way and pin parity more than speedup.\n");
}

void RunKPebbleSweep(BenchReport* report) {
  std::printf(
      "\nE21b: k-pebble scheduler, legacy scan vs csr bitset word-scan\n\n");
  TablePrinter table({"graph", "m", "k", "legacy_us", "csr_us", "speedup",
                      "fetches", "identical"});

  auto add = [&](const char* name, const Graph& base, int k) {
    Graph legacy = base;
    Graph frozen = base;
    frozen.BuildCsr();
    KPebbleOptions options;
    options.k = k;
    options.policy = EvictionPolicy::kMinRemainingDegree;
    options.seed = 5;

    const auto r_legacy = ScheduleKPebbles(legacy, options);
    const auto r_csr = ScheduleKPebbles(frozen, options);
    const bool identical = r_legacy.fetches == r_csr.fetches;
    if (!identical) {
      std::fprintf(stderr, "FATAL: k-pebble divergence on %s\n", name);
      std::exit(1);
    }

    const int64_t legacy_us =
        TimeColdMicros([&] { ScheduleKPebbles(legacy, options); });
    const int64_t csr_us =
        TimeColdMicros([&] { ScheduleKPebbles(frozen, options); });
    table.AddRow({name, FormatInt(base.num_edges()), FormatInt(k),
                  FormatInt(legacy_us), FormatInt(csr_us),
                  SpeedupCell(legacy_us, csr_us), FormatInt(r_csr.fetches),
                  identical ? "yes" : "NO"});
  };

  add("K_24,24", CompleteBipartite(24, 24).ToGraph(), 2);
  add("K_32,32", CompleteBipartite(32, 32).ToGraph(), 2);
  add("K_32,32", CompleteBipartite(32, 32).ToGraph(), 4);
  add("G_256", WorstCaseFamily(256).ToGraph(), 2);
  add("G_512", WorstCaseFamily(512).ToGraph(), 2);
  add("rand 32x32 m=768",
      RandomConnectedBipartite(32, 32, 768, 9).ToGraph(), 2);
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("kpebble_schedule", table);
  std::printf(
      "\nExpected shape: the selection loop is O(m) probes per pick either\n"
      "way, but csr touches m/64 contiguous words instead of m scattered\n"
      "flags — the dense rows should clear 1.5x comfortably.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("layout", argc, argv);
  pebblejoin::RunEngineSweep(&report);
  pebblejoin::RunKPebbleSweep(&report);
  return report.Finish() ? 0 : 1;
}
