// E8 — Structure of the cost model (Lemmas 2.1–2.4, Corollary 2.1).
//
// Three measurements:
//  (a) additivity: π(G ⊎ H) − (π(G) + π(H)) is exactly zero over random
//      unions, solved exactly (Lemma 2.2);
//  (b) matchings: π̂ = 2m, π = m (Lemma 2.4);
//  (c) bound tightness: over random connected graphs, where π lands inside
//      the window [m, m + ⌊(m−1)/4⌋] — including how often the join graph
//      pebbles perfectly (π = m).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "pebble/bounds.h"
#include "solver/component_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunAdditivity() {
  std::printf("E8a: additivity of pi over disjoint unions (Lemma 2.2)\n\n");
  TablePrinter table(
      {"seed", "pi(G)", "pi(H)", "pi(G+H)", "residual"});
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&exact, &greedy);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const BipartiteGraph a = RandomConnectedBipartite(3, 4, 7, seed);
    const BipartiteGraph b = RandomConnectedBipartite(4, 3, 8, seed + 50);
    const int64_t pa = *exact.OptimalEffectiveCost(a.ToGraph());
    const int64_t pb = *exact.OptimalEffectiveCost(b.ToGraph());
    const PebbleSolution joint = driver.Solve(DisjointUnion(a, b).ToGraph());
    table.AddRow({FormatInt(static_cast<int64_t>(seed)), FormatInt(pa),
                  FormatInt(pb), FormatInt(joint.effective_cost),
                  FormatInt(joint.effective_cost - pa - pb)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\nExpected shape: residual = 0 on every row.\n");
}

void RunMatchings() {
  std::printf("\nE8b: matchings (Lemma 2.4): pi_hat = 2m, pi = m\n\n");
  TablePrinter table({"m", "pi_hat", "pi", "components"});
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  for (int m : {1, 4, 16, 64, 256}) {
    const PebbleSolution s = driver.Solve(MatchingGraph(m).ToGraph());
    table.AddRow({FormatInt(m), FormatInt(s.hat_cost),
                  FormatInt(s.effective_cost),
                  FormatInt(s.num_components)});
  }
  std::fputs(table.Render().c_str(), stdout);
}

void RunTightness() {
  std::printf(
      "\nE8c: where pi lands in [m, m + floor((m-1)/4)] over random\n"
      "connected bipartite graphs (exact solver, m = 12)\n\n");
  TablePrinter table({"density", "trials", "perfect(pi=m)", "pi=m+1",
                      "pi=m+2", "pi>=m+3", "at_upper_bound"});
  const ExactPebbler exact;
  const int kTrials = 40;
  for (double density : {0.3, 0.45, 0.6, 0.8}) {
    int histogram[4] = {0, 0, 0, 0};
    int at_bound = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const int left = 6;
      const int right = 6;
      const int m = std::max(
          left + right - 1, static_cast<int>(density * left * right));
      const Graph g =
          RandomConnectedBipartite(left, right, m, 777 * trial + 5)
              .ToGraph();
      const auto cost = exact.OptimalEffectiveCost(g);
      if (!cost.has_value()) continue;
      const int64_t excess = *cost - g.num_edges();
      ++histogram[excess >= 3 ? 3 : excess];
      if (*cost == DfsUpperBoundForConnected(g.num_edges())) ++at_bound;
    }
    table.AddRow({FormatDouble(density, 2), FormatInt(kTrials),
                  FormatInt(histogram[0]), FormatInt(histogram[1]),
                  FormatInt(histogram[2]), FormatInt(histogram[3]),
                  FormatInt(at_bound)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: denser graphs pebble perfectly more often; the\n"
      "upper bound is rarely attained by random graphs (Theorem 3.3's\n"
      "family is special).\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunAdditivity();
  pebblejoin::RunMatchings();
  pebblejoin::RunTightness();
  return 0;
}
