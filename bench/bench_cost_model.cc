// E8 — Structure of the cost model (Lemmas 2.1–2.4, Corollary 2.1).
// E22 — Calibrated ladder planner vs. the blind ladder.
//
// E8, three measurements:
//  (a) additivity: π(G ⊎ H) − (π(G) + π(H)) is exactly zero over random
//      unions, solved exactly (Lemma 2.2);
//  (b) matchings: π̂ = 2m, π = m (Lemma 2.4);
//  (c) bound tightness: over random connected graphs, where π lands inside
//      the window [m, m + ⌊(m−1)/4⌋] — including how often the join graph
//      pebbles perfectly (π = m).
//
// E22 replays the E17 deadline sweep (worst-case family, Theorem 3.3)
// twice through the same FallbackPebbler — once blind, once configured
// with the committed LadderPlanner coefficients — and reports both costs,
// both wall clocks, and the plan provenance. The headline is the
// Held-Karp grind band (n = 8 under tight deadlines), where the blind
// ladder burns the whole budget discovering that exact will not finish
// and the planner skips straight to ils at the same final π. A second
// table sweeps the calibration families at one fixed deadline, so the
// model is exercised off the family it is showcased on.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/bench_report.h"
#include "pebble/bounds.h"
#include "solver/component_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/fallback_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/ladder_planner.h"
#include "util/budget.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunAdditivity(BenchReport* report) {
  std::printf("E8a: additivity of pi over disjoint unions (Lemma 2.2)\n\n");
  TablePrinter table(
      {"seed", "pi(G)", "pi(H)", "pi(G+H)", "residual"});
  const ExactPebbler exact;
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&exact, &greedy);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const BipartiteGraph a = RandomConnectedBipartite(3, 4, 7, seed);
    const BipartiteGraph b = RandomConnectedBipartite(4, 3, 8, seed + 50);
    const int64_t pa = *exact.OptimalEffectiveCost(a.ToGraph());
    const int64_t pb = *exact.OptimalEffectiveCost(b.ToGraph());
    const PebbleSolution joint = driver.Solve(DisjointUnion(a, b).ToGraph());
    table.AddRow({FormatInt(static_cast<int64_t>(seed)), FormatInt(pa),
                  FormatInt(pb), FormatInt(joint.effective_cost),
                  FormatInt(joint.effective_cost - pa - pb)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("additivity", table);
  std::printf("\nExpected shape: residual = 0 on every row.\n");
}

void RunMatchings(BenchReport* report) {
  std::printf("\nE8b: matchings (Lemma 2.4): pi_hat = 2m, pi = m\n\n");
  TablePrinter table({"m", "pi_hat", "pi", "components"});
  const GreedyWalkPebbler greedy;
  const ComponentPebbler driver(&greedy, nullptr);
  for (int m : {1, 4, 16, 64, 256}) {
    const PebbleSolution s = driver.Solve(MatchingGraph(m).ToGraph());
    table.AddRow({FormatInt(m), FormatInt(s.hat_cost),
                  FormatInt(s.effective_cost),
                  FormatInt(s.num_components)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("matchings", table);
}

void RunTightness(BenchReport* report) {
  std::printf(
      "\nE8c: where pi lands in [m, m + floor((m-1)/4)] over random\n"
      "connected bipartite graphs (exact solver, m = 12)\n\n");
  TablePrinter table({"density", "trials", "perfect(pi=m)", "pi=m+1",
                      "pi=m+2", "pi>=m+3", "at_upper_bound"});
  const ExactPebbler exact;
  const int kTrials = 40;
  for (double density : {0.3, 0.45, 0.6, 0.8}) {
    int histogram[4] = {0, 0, 0, 0};
    int at_bound = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const int left = 6;
      const int right = 6;
      const int m = std::max(
          left + right - 1, static_cast<int>(density * left * right));
      const Graph g =
          RandomConnectedBipartite(left, right, m, 777 * trial + 5)
              .ToGraph();
      const auto cost = exact.OptimalEffectiveCost(g);
      if (!cost.has_value()) continue;
      const int64_t excess = *cost - g.num_edges();
      ++histogram[excess >= 3 ? 3 : excess];
      if (*cost == DfsUpperBoundForConnected(g.num_edges())) ++at_bound;
    }
    table.AddRow({FormatDouble(density, 2), FormatInt(kTrials),
                  FormatInt(histogram[0]), FormatInt(histogram[1]),
                  FormatInt(histogram[2]), FormatInt(histogram[3]),
                  FormatInt(at_bound)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("tightness", table);
  std::printf(
      "\nExpected shape: denser graphs pebble perfectly more often; the\n"
      "upper bound is rarely attained by random graphs (Theorem 3.3's\n"
      "family is special).\n");
}

// One blind-vs-planned comparison row: solves `g` through both ladders
// under a fresh budget each and returns the rendered cells after the
// instance-identifying prefix the caller supplies.
std::vector<std::string> CompareLadders(const FallbackPebbler& blind,
                                        const FallbackPebbler& planned,
                                        const Graph& g,
                                        int64_t deadline_ms) {
  const auto run = [&](const FallbackPebbler& ladder, SolveOutcome* outcome,
                       double* elapsed_ms) {
    SolveBudget budget;
    budget.deadline_ms = deadline_ms;
    BudgetContext ctx(budget);
    Stopwatch timer;
    const auto order = ladder.PebbleWithOutcome(g, &ctx, outcome);
    *elapsed_ms = timer.ElapsedMicros() / 1000.0;
    return order.has_value();
  };
  SolveOutcome blind_outcome;
  SolveOutcome planned_outcome;
  double blind_ms = 0.0;
  double planned_ms = 0.0;
  run(blind, &blind_outcome, &blind_ms);
  run(planned, &planned_outcome, &planned_ms);
  const LadderPlanInfo& plan = planned_outcome.plan;
  return {FormatInt(blind_outcome.effective_cost),
          FormatInt(planned_outcome.effective_cost),
          FormatDouble(blind_ms, 2),
          FormatDouble(planned_ms, 2),
          plan.predicted_solver,
          FormatInt(plan.actual_rung),
          FormatInt(plan.budget_saved_ms)};
}

void RunPlannerSweep(BenchReport* report) {
  std::printf(
      "\nE22: calibrated planner vs. blind ladder on the E17 deadline\n"
      "sweep (worst-case family; equal pi, less budget burned)\n\n");
  const std::vector<std::string> compare_headers = {
      "ladder_pi", "planner_pi", "ladder_ms", "planner_ms",
      "start_rung", "actual_rung", "saved_ms"};

  const FallbackPebbler blind;
  const LadderPlanner planner;  // the committed cost_model.json fit
  FallbackPebbler::Options planned_options;
  planned_options.planner = &planner;
  const FallbackPebbler planned(planned_options);

  std::vector<std::string> headers = {"n", "m", "deadline_ms"};
  headers.insert(headers.end(), compare_headers.begin(),
                 compare_headers.end());
  TablePrinter table(headers);
  for (int n : {8, 16, 30}) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    for (int64_t deadline_ms : {0, 1, 5, 25, 100, 1000, -1}) {
      std::vector<std::string> row = {
          FormatInt(n), FormatInt(g.num_edges()),
          deadline_ms < 0 ? std::string("inf") : FormatInt(deadline_ms)};
      const auto cells = CompareLadders(blind, planned, g, deadline_ms);
      row.insert(row.end(), cells.begin(), cells.end());
      table.AddRow(row);
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("planner_deadline_sweep", table);
  std::printf(
      "\nExpected shape: planner_pi == ladder_pi on every row; in the\n"
      "Held-Karp band (n = 8, deadline <= 5ms) the planner skips exact\n"
      "(start_rung != exact) and planner_ms collapses versus ladder_ms.\n");

  std::printf(
      "\nE22b: same comparison across the calibration families at one\n"
      "10ms deadline (off-showcase generalization)\n\n");
  std::vector<std::string> family_headers = {"family", "m"};
  family_headers.insert(family_headers.end(), compare_headers.begin(),
                        compare_headers.end());
  TablePrinter families(family_headers);
  struct NamedInstance {
    std::string family;
    Graph graph;
  };
  std::vector<NamedInstance> instances;
  instances.push_back({"worstcase-10", WorstCaseFamily(10).ToGraph()});
  instances.push_back({"complete-5x6", CompleteBipartite(5, 6).ToGraph()});
  instances.push_back(
      {"sparse-9x9", RandomConnectedBipartite(9, 9, 20, 71).ToGraph()});
  instances.push_back(
      {"dense-7x7", RandomConnectedBipartite(7, 7, 21, 72).ToGraph()});
  instances.push_back({"star-64", StarGraph(64).ToGraph()});
  for (const NamedInstance& inst : instances) {
    std::vector<std::string> row = {inst.family,
                                    FormatInt(inst.graph.num_edges())};
    const auto cells = CompareLadders(blind, planned, inst.graph, 10);
    row.insert(row.end(), cells.begin(), cells.end());
    families.AddRow(row);
  }
  std::fputs(families.Render().c_str(), stdout);
  report->AddTable("planner_family_sweep", families);
  std::printf(
      "\nExpected shape: equal pi throughout; the planner only diverges\n"
      "from the blind ladder where exact would grind.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("cost_model", argc, argv);
  pebblejoin::RunAdditivity(&report);
  pebblejoin::RunMatchings(&report);
  pebblejoin::RunTightness(&report);
  pebblejoin::RunPlannerSweep(&report);
  return report.Finish() ? 0 : 1;
}
