// E15 (executors) — real join algorithms measured in the paper's units.
//
// Section 2 remarks that the merge phase of sort-merge join "does in some
// sense resemble this pebbling game". Here the resemblance is measured:
// each executor's actual trace is scored as a pebbling scheme of the join
// graph and compared against the optimal cost m. Sort-merge achieves π = m
// on every equijoin (Theorem 3.2 realized by a real algorithm); hash join
// pays a small premium (probe-row switches are jumps); block nested loop
// pays according to its block size.

#include <cstdio>

#include "exec/join_executors.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"
#include "pebble/scheme_verifier.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void Run() {
  std::printf(
      "E15: join-algorithm pebble traces vs the optimal cost m\n\n");
  TablePrinter table({"keys", "dups", "m", "sort_merge", "hash_join",
                      "bnl_b4", "bnl_b32", "sm_ratio", "hj_ratio"});
  for (const auto& [keys, dups] :
       std::vector<std::pair<int, int>>{{32, 1}, {32, 3}, {128, 2},
                                        {128, 5}, {512, 3}}) {
    EquijoinWorkloadOptions options;
    options.num_keys = keys;
    options.min_left_dup = 1;
    options.max_left_dup = dups;
    options.min_right_dup = 1;
    options.max_right_dup = dups;
    options.seed = 100 + keys + dups;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const Graph g = BuildEquiJoinGraph(w.left, w.right).ToGraph();

    auto cost = [&](const ExecutionTrace& trace) {
      const VerificationResult verdict = VerifyScheme(g, trace.scheme);
      JP_CHECK_MSG(verdict.valid, "executor trace failed verification");
      return verdict.effective_cost;
    };
    const int64_t sm = cost(SortMergeJoinExecute(w.left, w.right));
    const int64_t hj = cost(HashJoinExecute(w.left, w.right));
    const int64_t bnl4 = cost(BlockNestedLoopExecute(w.left, w.right, 4));
    const int64_t bnl32 = cost(BlockNestedLoopExecute(w.left, w.right, 32));
    const int64_t m = g.num_edges();

    table.AddRow({FormatInt(keys), FormatInt(dups), FormatInt(m),
                  FormatInt(sm), FormatInt(hj), FormatInt(bnl4),
                  FormatInt(bnl32),
                  FormatDouble(static_cast<double>(sm) / m, 4),
                  FormatDouble(static_cast<double>(hj) / m, 4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: sm_ratio = 1.0000 everywhere (a real sort-merge\n"
      "join realizes the Theorem 3.2 perfect schedule); hash join slightly\n"
      "above 1; BNL improves with block size but stays the worst.\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  return 0;
}
