// E17 — Quality vs. deadline for the degradation ladder.
//
// The FallbackPebbler trades optimality for punctuality: with a generous
// budget the exact rung wins, and as the deadline tightens the ladder
// descends through ILS, local search and the Theorem 3.1 terminator. This
// experiment sweeps the deadline on worst-case instances (Theorem 3.3:
// pi = 1.25m - 1, the family where heuristics are maximally stressed) and
// records, per deadline, which rung answered and the achieved cost ratio
// against the Lemma 2.3 lower bound m.
//
// The zero-deadline row is the robustness headline: every request still
// returns a verified scheme, at the Theorem 3.1 terminator's quality.

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/bench_report.h"
#include "pebble/cost_model.h"
#include "pebble/pebbling_scheme.h"
#include "pebble/scheme_verifier.h"
#include "solver/fallback_pebbler.h"
#include "util/budget.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunDeadlineSweep(BenchReport* report) {
  std::printf(
      "E17: degradation ladder — quality vs. deadline on the worst-case\n"
      "family (Theorem 3.3: optimal pi = 1.25m - 1)\n\n");
  TablePrinter table({"n", "m", "deadline_ms", "winner", "status", "pi",
                      "ratio", "opt_ratio", "time_ms", "valid"});

  const FallbackPebbler fallback;
  for (int n : {8, 16, 30}) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    const int64_t m = g.num_edges();
    const int64_t optimal = (5 * m) / 4 - 1;  // 1.25m - 1, m = 2n even
    for (int64_t deadline_ms : {0, 1, 5, 25, 100, 1000, -1}) {
      SolveBudget budget;
      budget.deadline_ms = deadline_ms;  // -1 = unlimited
      BudgetContext ctx(budget);
      SolveOutcome outcome;
      Stopwatch timer;
      const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
      const double elapsed_ms = timer.ElapsedMicros() / 1000.0;
      const bool valid =
          order.has_value() &&
          VerifyScheme(g, SchemeFromEdgeOrder(g, *order)).valid;
      table.AddRow(
          {FormatInt(n), FormatInt(m),
           deadline_ms < 0 ? std::string("inf")
                           : FormatInt(deadline_ms),
           outcome.winner, RungStatusName(outcome.status),
           FormatInt(outcome.effective_cost),
           FormatDouble(static_cast<double>(outcome.effective_cost) /
                            static_cast<double>(m),
                        4),
           FormatDouble(static_cast<double>(outcome.effective_cost) /
                            static_cast<double>(optimal),
                        4),
           FormatDouble(elapsed_ms, 2), valid ? "yes" : "NO"});
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("deadline_sweep", table);
  std::printf(
      "\nExpected shape: valid = yes on every row (the ladder never fails);\n"
      "deadline 0 answers from the dfs-tree terminator at ratio <= 1.25;\n"
      "growing deadlines descend the opt_ratio toward 1; small n reaches\n"
      "opt_ratio = 1 via the exact rung once the deadline admits it.\n");
}

void RunMemorySweep(BenchReport* report) {
  std::printf(
      "\nE17b: memory-ceiling sweep under an expired deadline — which rung\n"
      "terminates when the budgeted rungs are already cut\n\n");
  TablePrinter table({"memory_kb", "winner", "pi", "ratio", "valid"});
  const FallbackPebbler fallback;
  const Graph g = StarGraph(64).ToGraph();  // L(G) = K_64: quadratic blowup
  const int64_t m = g.num_edges();
  for (int64_t kb : {1, 4, 16, 64, 1024, -1}) {
    // Deadline 0 cuts the anytime rungs (which are memory-robust: they clamp
    // the line graph and answer from their seed); the sweep then shows the
    // dfs-tree terminator handing over to the greedy walk once L(G) itself
    // misses the ceiling.
    SolveBudget budget;
    budget.deadline_ms = 0;
    budget.memory_limit_bytes = kb < 0 ? SolveBudget::kUnlimited : kb * 1024;
    BudgetContext ctx(budget);
    SolveOutcome outcome;
    const auto order = fallback.PebbleWithOutcome(g, &ctx, &outcome);
    const bool valid =
        order.has_value() &&
        VerifyScheme(g, SchemeFromEdgeOrder(g, *order)).valid;
    table.AddRow(
        {kb < 0 ? std::string("inf") : FormatInt(kb), outcome.winner,
         FormatInt(outcome.effective_cost),
         FormatDouble(static_cast<double>(outcome.effective_cost) /
                          static_cast<double>(m),
                      4),
         valid ? "yes" : "NO"});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("memory_sweep", table);
  std::printf(
      "\nExpected shape: tiny ceilings answer from the greedy walk\n"
      "(<= 2m, no line graph); once L(G) = K_64 fits (~32 KB) the dfs-tree\n"
      "terminator answers. Every row stays valid.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("degradation", argc, argv);
  pebblejoin::RunDeadlineSweep(&report);
  pebblejoin::RunMemorySweep(&report);
  return report.Finish() ? 0 : 1;
}
