// E1 — Equijoins are perfect and solved in linear time (Theorems 3.2, 4.1).
//
// Regenerates the quantitative content of Section 3.1: for equijoin
// workloads of growing output size m, the sort-merge pebbler always achieves
// π = m (ratio exactly 1), and its running time grows linearly in m. The
// "time/m" column stabilizing is the linear-time claim of Theorem 4.1.

#include <cstdio>

#include "core/analyzer.h"
#include "join/workload.h"
#include "obs/bench_report.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunSweep(BenchReport* report) {
  std::printf(
      "E1: equijoin pebbling (Theorem 3.2: pi = m; Theorem 4.1: linear "
      "time)\n\n");
  TablePrinter table({"keys", "|R|", "|S|", "m", "pi_hat", "pi", "pi/m",
                      "perfect", "solve_us", "us_per_edge"});

  const JoinAnalyzer analyzer;
  for (int keys : {100, 400, 1600, 6400, 25600, 102400}) {
    EquijoinWorkloadOptions options;
    options.num_keys = keys;
    options.min_left_dup = 1;
    options.max_left_dup = 3;
    options.min_right_dup = 1;
    options.max_right_dup = 3;
    options.key_match_rate = 0.9;
    options.seed = 1000 + keys;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);

    Stopwatch timer;
    const JoinAnalysis a = analyzer.AnalyzeEquiJoin(w.left, w.right);
    const double micros = timer.ElapsedMicros();

    table.AddRow({FormatInt(keys), FormatInt(w.left.size()),
                  FormatInt(w.right.size()), FormatInt(a.output_size),
                  FormatInt(a.solution.hat_cost),
                  FormatInt(a.solution.effective_cost),
                  FormatDouble(a.cost_ratio, 4),
                  a.perfect ? "yes" : "NO", FormatDouble(micros, 1),
                  FormatDouble(micros / static_cast<double>(a.output_size),
                               4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("scaling_sweep", table);
  std::printf(
      "\nExpected shape: pi/m = 1.0000 on every row (equijoins pebble\n"
      "perfectly); us_per_edge roughly constant (linear-time solver).\n");
}

void RunSkewSweep(BenchReport* report) {
  std::printf(
      "\nE1b: skew — one heavy key (K_{d,d} block) among light keys\n\n");
  TablePrinter table({"heavy_dup", "m", "pi", "pi/m", "perfect"});
  const JoinAnalyzer analyzer;
  for (int dup : {2, 8, 32, 128}) {
    EquijoinWorkloadOptions options;
    options.num_keys = 64;
    options.min_left_dup = options.max_left_dup = 1;
    options.min_right_dup = options.max_right_dup = 1;
    options.seed = 7;
    Realization<int64_t> w = GenerateEquijoinWorkload(options);
    // Heavy key: dup copies on both sides.
    for (int i = 0; i < dup; ++i) {
      w.left.Add(-1);
      w.right.Add(-1);
    }
    const JoinAnalysis a = analyzer.AnalyzeEquiJoin(w.left, w.right);
    table.AddRow({FormatInt(dup), FormatInt(a.output_size),
                  FormatInt(a.solution.effective_cost),
                  FormatDouble(a.cost_ratio, 4),
                  a.perfect ? "yes" : "NO"});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("skew_sweep", table);
  std::printf(
      "\nSkew does not change the verdict: complete-bipartite blocks of any\n"
      "shape are pebbled perfectly (Lemma 3.2).\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("equijoin", argc, argv);
  pebblejoin::RunSweep(&report);
  pebblejoin::RunSkewSweep(&report);
  return report.Finish() ? 0 : 1;
}
