// E2 — The worst-case family of Theorem 3.3 / Figure 1.
//
// Regenerates the figure's combinatorial content: for Gₙ (m = 2n), the
// optimal effective pebbling cost equals m + ⌈m/4⌉ − 1 (the integral form
// of 1.25m − 1), the exact solver confirms the closed form on small n, the
// DFS-tree construction of Theorem 3.1 matches the optimum exactly on this
// family, and the ratio π/m converges to 1.25 from below as n grows.

#include <cstdio>

#include "graph/generators.h"
#include "obs/bench_report.h"
#include "pebble/bounds.h"
#include "pebble/cost_model.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

int64_t EffectiveCost(const Graph& g, const std::vector<int>& order) {
  return static_cast<int64_t>(order.size()) + JumpsOfEdgeOrder(g, order);
}

void RunExactRange(BenchReport* report) {
  std::printf(
      "E2: worst-case family G_n (Theorem 3.3): pi(G_n) = m + ceil(m/4) - "
      "1\n\n");
  TablePrinter table({"n", "m", "closed_form", "exact_pi", "dfs_pi",
                      "local_pi", "pi/m", "1.25m-1"});
  const ExactPebbler exact;
  const DfsTreePebbler dfs;
  const LocalSearchPebbler local;
  for (int n = 3; n <= 14; ++n) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    const int64_t m = g.num_edges();
    const int64_t closed = WorstCaseFamilyOptimalCost(n);

    std::string exact_cell = "-";
    if (const auto cost = exact.OptimalEffectiveCost(g)) {
      exact_cell = FormatInt(*cost);
    }
    const auto dfs_order = dfs.PebbleConnected(g);
    const auto local_order = local.PebbleConnected(g);

    table.AddRow({FormatInt(n), FormatInt(m), FormatInt(closed), exact_cell,
                  FormatInt(EffectiveCost(g, *dfs_order)),
                  FormatInt(EffectiveCost(g, *local_order)),
                  FormatDouble(static_cast<double>(closed) /
                                   static_cast<double>(m),
                               4),
                  FormatDouble(1.25 * static_cast<double>(m) - 1.0, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("exact_range", table);
}

void RunAsymptotics(BenchReport* report) {
  std::printf(
      "\nE2b: ratio pi/m -> 1.25 as n grows (heuristics at scale)\n\n");
  TablePrinter table(
      {"n", "m", "closed_form", "dfs_pi", "dfs_ratio", "closed_ratio"});
  const DfsTreePebbler dfs;
  for (int n : {16, 32, 64, 128, 256, 512, 1024}) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    const int64_t m = g.num_edges();
    const int64_t closed = WorstCaseFamilyOptimalCost(n);
    const auto order = dfs.PebbleConnected(g);
    const int64_t dfs_pi = EffectiveCost(g, *order);
    table.AddRow(
        {FormatInt(n), FormatInt(m), FormatInt(closed), FormatInt(dfs_pi),
         FormatDouble(static_cast<double>(dfs_pi) / static_cast<double>(m),
                      5),
         FormatDouble(static_cast<double>(closed) / static_cast<double>(m),
                      5)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("asymptotics", table);
  std::printf(
      "\nExpected shape: both ratios increase toward 1.25; no solver can\n"
      "do better than closed_form on this family (Theorem 3.3), and\n"
      "Theorem 3.1 says no connected graph is worse.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("worstcase_family", argc, argv);
  pebblejoin::RunExactRange(&report);
  pebblejoin::RunAsymptotics(&report);
  return report.Finish() ? 0 : 1;
}
