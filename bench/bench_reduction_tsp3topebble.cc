// E6 — The incidence-graph L-reduction TSP-3(1,2) → PEBBLE (Theorem 4.4).
//
// For random degree-≤3 instances G: builds the incidence bipartite graph B,
// solves both sides exactly, and reports the observed α = π(B)/OPT(G)
// (claim: ≤ 3), plus the observed β over lifted pebblings (claim: ≤ 1).
// Also shows the structural identity behind the reduction: L(B) is G with
// every degree-i vertex expanded into K_i.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "graph/generators.h"
#include "graph/line_graph.h"
#include "pebble/cost_model.h"
#include "reductions/l_reduction.h"
#include "reductions/tsp3_to_pebble.h"
#include "solver/exact_pebbler.h"
#include "tsp/held_karp.h"
#include "util/random.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void Run() {
  std::printf(
      "E6: L-reduction TSP-3(1,2) -> PEBBLE via incidence graphs\n"
      "(Theorem 4.4: alpha = 3, beta = 1)\n\n");
  TablePrinter table({"seed", "|V(G)|", "|E(G)|", "|E(B)|", "OPT(G)",
                      "pi(B)-1", "alpha_obs", "beta_max", "p1", "p2"});

  ExactPebbler::Options exact_options;
  exact_options.max_edges = 26;
  exact_options.bnb_node_budget = 500'000'000;
  const ExactPebbler exact(exact_options);
  Rng rng(7);

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 6 + static_cast<int>(seed % 3);
    const Tsp12Instance g(RandomConnectedBoundedDegree(n, 3, 3, seed));
    const Tsp3ToPebbleReduction reduction(g);

    LReductionSample sample;
    sample.opt_x = HeldKarpSolve(g)->cost;
    const auto pebble_opt =
        exact.OptimalEffectiveCost(reduction.pebble_graph());
    if (!pebble_opt.has_value()) {
      table.AddRow({FormatInt(static_cast<int64_t>(seed)),
                    FormatInt(g.num_nodes()),
                    FormatInt(g.good().num_edges()),
                    FormatInt(reduction.b().num_edges()), "-", "-", "-", "-",
                    "-", "-"});
      continue;
    }
    // The L-reduction compares TSP costs; by Proposition 2.2 the tour
    // cost over L(B) is the pebbling cost minus one.
    sample.opt_fx = *pebble_opt - 1;

    double beta_max = 0;
    bool p2_all = true;
    for (int trial = 0; trial < 12; ++trial) {
      const Tour g_tour = rng.Permutation(g.num_nodes());
      const std::vector<int> s = reduction.LiftTourToEdgeOrder(g_tour);
      const Graph& pb = reduction.pebble_graph();
      sample.cost_s =
          static_cast<int64_t>(s.size()) + JumpsOfEdgeOrder(pb, s) - 1;
      sample.cost_gs = TourCost(g, reduction.MapEdgeOrderBack(s));
      const double beta = ObservedBeta(sample);
      if (beta != std::numeric_limits<double>::infinity()) {
        beta_max = std::max(beta_max, beta);
      }
      p2_all = p2_all && SatisfiesProperty2(sample, 1.0);
    }

    table.AddRow(
        {FormatInt(static_cast<int64_t>(seed)), FormatInt(g.num_nodes()),
         FormatInt(g.good().num_edges()),
         FormatInt(reduction.b().num_edges()), FormatInt(sample.opt_x),
         FormatInt(sample.opt_fx), FormatDouble(ObservedAlpha(sample), 3),
         FormatDouble(beta_max, 3),
         SatisfiesProperty1(sample, 3.0) ? "ok" : "VIOLATED",
         p2_all ? "ok" : "VIOLATED"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: alpha_obs <= 3 and beta_max <= 1 on every row,\n"
      "with both Definition 4.2 properties reported 'ok'.\n");
}

void RunStructure() {
  std::printf(
      "\nE6b: L(B) structure — vertex v of degree i becomes a K_i clique\n\n");
  TablePrinter table(
      {"graph", "|V(G)|", "|E(G)|", "|V(L(B))|", "|E(L(B))|", "formula"});
  for (int n : {5, 7, 9}) {
    const Graph g = CycleGraph(n);
    const Tsp3ToPebbleReduction reduction(Tsp12Instance{g});
    const Graph line = BuildLineGraph(reduction.pebble_graph());
    // Each degree-2 vertex contributes one K_2 edge; each edge of G pairs
    // its two incidences: |E(L(B))| = Σ C(deg,2) + |E(G)|.
    int64_t expected = g.num_edges();
    for (int v = 0; v < g.num_vertices(); ++v) {
      const int64_t d = g.Degree(v);
      expected += d * (d - 1) / 2;
    }
    table.AddRow({"C_" + FormatInt(n), FormatInt(g.num_vertices()),
                  FormatInt(g.num_edges()), FormatInt(line.num_vertices()),
                  FormatInt(line.num_edges()), FormatInt(expected)});
  }
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  pebblejoin::RunStructure();
  return 0;
}
