// E9 — The pebbling ↔ TSP bridge (Section 2.2, Propositions 2.1, 2.2) and
// the TSP-(1,2) heuristic ladder the approximation discussion relies on.
//
// Part (a): over an exhaustive sweep of random small connected graphs,
// counts how often π(G) = m coincides with L(G) having a Hamiltonian path
// (Proposition 2.1 — must be always), and validates the exact identity
// optimal-L(G)-tour-cost = π(G) − 1 (Proposition 2.2 — must be always).
//
// Part (b): the quality ladder NN → greedy path cover → +2-opt/Or-opt →
// exact, mirroring the gap between the trivial 2-approximation and the
// 7/6-style algorithms the paper cites ([12]).

#include <cstdio>

#include "graph/generators.h"
#include "graph/hamiltonian.h"
#include "graph/line_graph.h"
#include "obs/bench_report.h"
#include "solver/exact_pebbler.h"
#include "tsp/held_karp.h"
#include "tsp/local_search.h"
#include "tsp/nearest_neighbor.h"
#include "tsp/path_cover.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunBridge(BenchReport* report) {
  std::printf(
      "E9a: Propositions 2.1 / 2.2 over random small connected graphs\n\n");
  TablePrinter table({"m", "trials", "prop2.1_holds", "prop2.2_holds",
                      "perfect_count"});
  const ExactPebbler exact;
  for (int m : {7, 9, 11, 13}) {
    const int kTrials = 25;
    int p21 = 0;
    int p22 = 0;
    int perfect = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Graph g =
          RandomConnectedBipartite(4, 4, m, 10'000 + 31 * m + trial)
              .ToGraph();
      const Graph line = BuildLineGraph(g);
      const int64_t pi = *exact.OptimalEffectiveCost(g);
      if ((pi == m) == HasHamiltonianPath(line)) ++p21;
      if (pi == m) ++perfect;
      const Tsp12Instance line_instance(line);
      const auto tour = HeldKarpSolve(line_instance);
      if (tour.has_value() && tour->cost == pi - 1) ++p22;
    }
    table.AddRow({FormatInt(m), FormatInt(kTrials),
                  FormatInt(p21) + "/" + FormatInt(kTrials),
                  FormatInt(p22) + "/" + FormatInt(kTrials),
                  FormatInt(perfect)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("bridge", table);
  std::printf(
      "\nExpected shape: both proposition columns at trials/trials.\n");
}

void RunLadder(BenchReport* report) {
  std::printf(
      "\nE9b: TSP-(1,2) heuristic ladder on random line graphs "
      "(mean jumps; lower is better)\n\n");
  TablePrinter table({"nodes", "nn", "nn_multi", "path_cover", "plus_2opt",
                      "exact"});
  for (int m : {10, 13, 16, 19}) {
    const int kTrials = 15;
    double nn = 0, nn_multi = 0, cover = 0, improved = 0, best = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Graph g =
          RandomConnectedBipartite(5, 5, m, 555 + 7 * m + trial).ToGraph();
      const Tsp12Instance inst(BuildLineGraph(g));
      nn += static_cast<double>(
          TourJumps(inst, NearestNeighborTour(inst, 0)));
      nn_multi += static_cast<double>(
          TourJumps(inst, BestNearestNeighborTour(inst, 8, trial)));
      Tour cover_tour = BestGreedyPathCoverTour(inst, 4, trial);
      cover += static_cast<double>(TourJumps(inst, cover_tour));
      LocalSearchOptions options;
      LocalSearchImprove(inst, &cover_tour, options);
      improved += static_cast<double>(TourJumps(inst, cover_tour));
      best += static_cast<double>(HeldKarpSolve(inst)->jumps);
    }
    table.AddRow({FormatInt(m), FormatDouble(nn / kTrials, 3),
                  FormatDouble(nn_multi / kTrials, 3),
                  FormatDouble(cover / kTrials, 3),
                  FormatDouble(improved / kTrials, 3),
                  FormatDouble(best / kTrials, 3)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("heuristic_ladder", table);
  std::printf(
      "\nExpected shape: restarts improve NN, 2-opt/Or-opt improves the\n"
      "path cover, and plus_2opt lands close to exact.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("tsp_bridge", argc, argv);
  pebblejoin::RunBridge(&report);
  pebblejoin::RunLadder(&report);
  return report.Finish() ? 0 : 1;
}
