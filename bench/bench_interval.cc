// E16 (interval joins) — a predicate strictly between the paper's classes.
//
// One-dimensional interval overlap generalizes equality (points) but —
// unlike 2-D rectangle overlap — cannot express the Figure-1 worst-case
// family (interval_test.cc mechanizes the obstruction). This bench places
// it empirically: interval joins pebble at or near ratio 1 across
// densities, unlike matched 2-D workloads, refining the paper's
// easy-to-hard spectrum equijoin < interval < {spatial, sets}.

#include <cstdio>

#include "core/analyzer.h"
#include "join/interval.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void Run() {
  std::printf(
      "E16: interval-overlap joins vs 2-D rectangle joins at matched "
      "density\n\n");
  TablePrinter table({"avg_len", "1d_m", "1d_ratio", "1d_perfect", "2d_m",
                      "2d_ratio", "2d_perfect"});
  const JoinAnalyzer analyzer;
  for (double length : {1.0, 2.0, 4.0, 8.0}) {
    // 1-D intervals.
    double ratio_1d = 0;
    int perfect_1d = 0;
    int64_t m_1d = 0;
    double ratio_2d = 0;
    int perfect_2d = 0;
    int64_t m_2d = 0;
    const int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
      IntervalWorkloadOptions iv;
      iv.num_left = 40;
      iv.num_right = 40;
      iv.space = 80;
      iv.min_length = length * 0.5;
      iv.max_length = length * 1.5;
      iv.seed = 100 * trial + 7;
      const IntervalRealization w1 = GenerateIntervalWorkload(iv);
      const JoinAnalysis a1 = analyzer.AnalyzeJoinGraph(
          BuildIntervalOverlapJoinGraph(w1.left, w1.right),
          PredicateClass::kSpatialOverlap);
      ratio_1d += a1.cost_ratio;
      perfect_1d += a1.perfect ? 1 : 0;
      m_1d += a1.output_size;

      RectWorkloadOptions rv;
      rv.num_left = 40;
      rv.num_right = 40;
      rv.space = 80;
      rv.min_extent = length * 2.0;  // larger extents to match output size
      rv.max_extent = length * 6.0;
      rv.seed = 100 * trial + 7;
      const Realization<Rect> w2 = GenerateRectWorkload(rv);
      const JoinAnalysis a2 =
          analyzer.AnalyzeSpatialOverlap(w2.left, w2.right);
      ratio_2d += a2.cost_ratio;
      perfect_2d += a2.perfect ? 1 : 0;
      m_2d += a2.output_size;
    }
    table.AddRow({FormatDouble(length, 1), FormatInt(m_1d / kTrials),
                  FormatDouble(ratio_1d / kTrials, 4),
                  FormatInt(perfect_1d) + "/" + FormatInt(kTrials),
                  FormatInt(m_2d / kTrials),
                  FormatDouble(ratio_2d / kTrials, 4),
                  FormatInt(perfect_2d) + "/" + FormatInt(kTrials)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: 1d_ratio pinned at/near 1.0000 with high perfect\n"
      "counts; 2d joins develop jumps as density rises. Neither family\n"
      "reaches 1.25 — only engineered instances do (E2/E7).\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  return 0;
}
