// E11 (substrate) — the page-fetch scheduling model of [6]/[7], the setting
// in which the PEBBLE problem was first shown NP-complete (Theorem 4.2's
// citations).
//
// Two sweeps: (a) page capacity vs total fetches for clustered and random
// layouts of an equijoin — the clustered layout keeps each key's block on
// few page pairs, so its page graph stays near the equijoin shape and the
// schedule near its lower bound; (b) the spatial worst-case family on
// single-tuple pages, showing the tuple-level hardness is the page-level
// hardness (capacity 1 is the identity projection).

#include <cstdio>

#include "graph/generators.h"
#include "join/join_graph_builder.h"
#include "join/realizers.h"
#include "join/workload.h"
#include "paging/page_schedule.h"
#include "solver/local_search_pebbler.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunLayoutSweep() {
  std::printf(
      "E11a: page fetches vs page capacity — clustered vs random layout\n"
      "(equijoin, 128 keys, ~2x2 duplicates)\n\n");
  TablePrinter table({"capacity", "pages", "seq_pairs", "seq_fetches",
                      "seq_lb", "rnd_pairs", "rnd_fetches", "rnd_lb"});
  EquijoinWorkloadOptions options;
  options.num_keys = 128;
  options.min_left_dup = options.max_left_dup = 2;
  options.min_right_dup = options.max_right_dup = 2;
  options.seed = 77;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  const BipartiteGraph tuples = BuildEquiJoinGraph(w.left, w.right);
  const LocalSearchPebbler pebbler;

  for (int capacity : {1, 2, 4, 8, 16}) {
    const PageSchedule seq = SchedulePageFetches(
        tuples, SequentialLayout(tuples.left_size(), capacity),
        SequentialLayout(tuples.right_size(), capacity), pebbler);
    const PageSchedule rnd = SchedulePageFetches(
        tuples, RandomLayout(tuples.left_size(), capacity, 5),
        RandomLayout(tuples.right_size(), capacity, 6), pebbler);
    table.AddRow(
        {FormatInt(capacity),
         FormatInt(seq.page_graph.left_size() + seq.page_graph.right_size()),
         FormatInt(seq.page_graph.num_edges()),
         FormatInt(seq.page_fetches), FormatInt(seq.lower_bound),
         FormatInt(rnd.page_graph.num_edges()),
         FormatInt(rnd.page_fetches), FormatInt(rnd.lower_bound)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: clustered (seq) layouts touch far fewer page\n"
      "pairs and schedule at/near their lower bound; random layouts pay\n"
      "for scattering each key across pages. Larger pages shrink both.\n");
}

void RunHardFamily() {
  std::printf(
      "\nE11b: the worst-case family as a page-fetch problem (capacity "
      "1)\n\n");
  TablePrinter table({"n", "page_pairs", "fetches", "lower_bound",
                      "excess_fetches"});
  const LocalSearchPebbler pebbler;
  for (int n : {8, 16, 32, 64}) {
    const Realization<Rect> inst = RealizeWorstCaseAsSpatial(n);
    const BipartiteGraph tuples =
        BuildOverlapJoinGraph(inst.left, inst.right);
    const PageSchedule schedule = SchedulePageFetches(
        tuples, SequentialLayout(tuples.left_size(), 1),
        SequentialLayout(tuples.right_size(), 1), pebbler);
    table.AddRow({FormatInt(n), FormatInt(schedule.page_graph.num_edges()),
                  FormatInt(schedule.page_fetches),
                  FormatInt(schedule.lower_bound),
                  FormatInt(schedule.page_fetches - schedule.lower_bound)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: excess_fetches ≈ m/4 — the Theorem 3.3 jumps\n"
      "become real page re-reads in the scheduling model.\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunLayoutSweep();
  pebblejoin::RunHardFamily();
  return 0;
}
