// Micro-benchmarks of the library's kernels (google-benchmark): join-graph
// construction (hash vs nested loop vs sweep vs inverted index), line-graph
// materialization, and each pebbler. These time the machinery the
// experiment benches rely on; the E1–E9 binaries measure the paper's
// claims themselves.

#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "graph/line_graph.h"
#include "join/join_graph_builder.h"
#include "join/signature_join.h"
#include "join/predicates.h"
#include "join/workload.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "solver/sort_merge_pebbler.h"

namespace pebblejoin {
namespace {

Realization<int64_t> EquijoinInput(int keys) {
  EquijoinWorkloadOptions options;
  options.num_keys = keys;
  options.seed = 11;
  return GenerateEquijoinWorkload(options);
}

void BM_EquiJoinGraph_Hash(benchmark::State& state) {
  const Realization<int64_t> w = EquijoinInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEquiJoinGraph(w.left, w.right));
  }
}
BENCHMARK(BM_EquiJoinGraph_Hash)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EquiJoinGraph_NestedLoop(benchmark::State& state) {
  const Realization<int64_t> w = EquijoinInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildJoinGraphNestedLoop(w.left, w.right, EqualityPredicate()));
  }
}
BENCHMARK(BM_EquiJoinGraph_NestedLoop)->Arg(100)->Arg(1000);

void BM_OverlapJoinGraph_Sweep(benchmark::State& state) {
  RectWorkloadOptions options;
  options.num_left = static_cast<int>(state.range(0));
  options.num_right = static_cast<int>(state.range(0));
  options.seed = 3;
  const Realization<Rect> w = GenerateRectWorkload(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildOverlapJoinGraph(w.left, w.right));
  }
}
BENCHMARK(BM_OverlapJoinGraph_Sweep)->Arg(100)->Arg(400)->Arg(1600);

void BM_SetContainmentJoinGraph(benchmark::State& state) {
  SetWorkloadOptions options;
  options.num_left = static_cast<int>(state.range(0));
  options.num_right = static_cast<int>(state.range(0));
  options.universe = 40;
  options.seed = 3;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSetContainmentJoinGraph(w.left, w.right));
  }
}
BENCHMARK(BM_SetContainmentJoinGraph)->Arg(100)->Arg(400)->Arg(1600);

void BM_SetContainmentJoinGraph_Signature(benchmark::State& state) {
  SetWorkloadOptions options;
  options.num_left = static_cast<int>(state.range(0));
  options.num_right = static_cast<int>(state.range(0));
  options.universe = 40;
  options.seed = 3;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSetContainmentJoinGraphSignature(
        w.left, w.right, 64, nullptr));
  }
}
BENCHMARK(BM_SetContainmentJoinGraph_Signature)->Arg(100)->Arg(400)->Arg(1600);

void BM_LineGraphBuild(benchmark::State& state) {
  const Graph g = RandomConnectedBipartite(
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)), 5)
                      .ToGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildLineGraph(g));
  }
}
BENCHMARK(BM_LineGraphBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SortMergePebbler(benchmark::State& state) {
  const Graph g = CompleteBipartite(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)))
                      .ToGraph();
  const SortMergePebbler pebbler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pebbler.PebbleConnected(g));
  }
}
BENCHMARK(BM_SortMergePebbler)->Arg(16)->Arg(64)->Arg(128);

void BM_GreedyWalkPebbler(benchmark::State& state) {
  const Graph g = RandomConnectedBipartite(
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)), 5)
                      .ToGraph();
  const GreedyWalkPebbler pebbler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pebbler.PebbleConnected(g));
  }
}
BENCHMARK(BM_GreedyWalkPebbler)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DfsTreePebbler(benchmark::State& state) {
  const Graph g = RandomConnectedBipartite(
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)), 5)
                      .ToGraph();
  const DfsTreePebbler pebbler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pebbler.PebbleConnected(g));
  }
}
BENCHMARK(BM_DfsTreePebbler)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LocalSearchPebbler(benchmark::State& state) {
  const Graph g = RandomConnectedBipartite(
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)) / 8,
                      static_cast<int>(state.range(0)), 5)
                      .ToGraph();
  const LocalSearchPebbler pebbler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pebbler.PebbleConnected(g));
  }
}
BENCHMARK(BM_LocalSearchPebbler)->Arg(128)->Arg(256);

}  // namespace
}  // namespace pebblejoin
