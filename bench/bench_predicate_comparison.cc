// E7 — Predicate comparison at matched output size (Lemmas 3.3, 3.4 and the
// paper's headline story).
//
// Three joins with the SAME output size m:
//   * an equijoin workload,
//   * a set-containment join realizing a hard random bipartite graph
//     (Lemma 3.3: set-containment joins are universal),
//   * a spatial-overlap join realizing the Figure-1 worst-case family
//     (Lemma 3.4).
// Equijoins always pebble at ratio 1; the other two exceed it, with the
// spatial worst case converging to 1.25 — the paper's "equijoins are the
// easiest, spatial-overlap and set-containment the hardest".

#include <cstdio>

#include "core/analyzer.h"
#include "core/report.h"
#include "graph/generators.h"
#include "join/realizers.h"
#include "join/workload.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void Run() {
  std::printf(
      "E7: pebbling cost ratio by join predicate at equal output size\n\n");
  TablePrinter table({"m", "equijoin", "set-containment", "spatial(G_n)",
                      "set_perfect", "spatial_perfect"});
  const JoinAnalyzer analyzer;

  for (int n : {8, 16, 32, 64, 128}) {
    const int m = 2 * n;

    // Equijoin with output size m: n keys with 1x2 duplicates.
    EquijoinWorkloadOptions eq;
    eq.num_keys = n;
    eq.min_left_dup = eq.max_left_dup = 1;
    eq.min_right_dup = eq.max_right_dup = 2;
    eq.seed = n;
    const Realization<int64_t> w = GenerateEquijoinWorkload(eq);
    const JoinAnalysis eq_analysis = analyzer.AnalyzeEquiJoin(w.left, w.right);

    // Set containment realizing a sparse random connected bipartite graph
    // with exactly m edges.
    const BipartiteGraph hard =
        RandomConnectedBipartite(n / 2 + 1, n / 2 + 1, m, 100 + n);
    const Realization<IntSet> sets = RealizeAsSetContainment(hard);
    const JoinAnalysis set_analysis =
        analyzer.AnalyzeSetContainment(sets.left, sets.right);

    // Spatial overlap realizing the worst-case family (m = 2n).
    const Realization<Rect> rects = RealizeWorstCaseAsSpatial(n);
    const JoinAnalysis spatial_analysis =
        analyzer.AnalyzeSpatialOverlap(rects.left, rects.right);

    table.AddRow({FormatInt(m), FormatDouble(eq_analysis.cost_ratio, 4),
                  FormatDouble(set_analysis.cost_ratio, 4),
                  FormatDouble(spatial_analysis.cost_ratio, 4),
                  set_analysis.perfect ? "yes" : "no",
                  spatial_analysis.perfect ? "yes" : "no"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: equijoin column pinned at 1.0000; set-containment\n"
      "above 1; spatial (the Theorem 3.3 family) climbing toward 1.25.\n");
}

void RunSampleReports() {
  std::printf("\nE7b: analyzer reports for one instance of each class\n\n");
  const JoinAnalyzer analyzer;

  KeyRelation r("R", {1, 1, 2, 3});
  KeyRelation s("S", {1, 2, 2, 4});
  std::fputs(FormatAnalysis(analyzer.AnalyzeEquiJoin(r, s)).c_str(), stdout);
  std::printf("\n");

  const Realization<IntSet> sets =
      RealizeAsSetContainment(WorstCaseFamily(6));
  std::fputs(
      FormatAnalysis(analyzer.AnalyzeSetContainment(sets.left, sets.right))
          .c_str(),
      stdout);
  std::printf("\n");

  const Realization<Rect> rects = RealizeWorstCaseAsSpatial(6);
  std::fputs(
      FormatAnalysis(analyzer.AnalyzeSpatialOverlap(rects.left, rects.right))
          .c_str(),
      stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  pebblejoin::RunSampleReports();
  return 0;
}
