// E13 (exhaustive census) — Theorem 3.1 and Lemma 2.3 verified over EVERY
// small connected bipartite graph, not a sample.
//
// For each (left, right, m) cell: enumerate all isomorphism classes of
// connected spanning bipartite graphs, solve each exactly, and report the
// distribution of the excess π − m against the Theorem 3.1 ceiling
// ⌊(m−1)/4⌋. Zero violations is the theorem; the "at_bound" column locates
// the extremal classes (Theorem 3.3's Gₙ among them — the 4×3, m = 6 cell
// contains G₃).

#include <algorithm>
#include <cstdio>

#include "graph/census.h"
#include "pebble/bounds.h"
#include "solver/exact_pebbler.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

void RunCensus(int left, int right) {
  std::printf("E13: exhaustive census %dx%d (every class solved exactly)\n\n",
              left, right);
  TablePrinter table({"m", "classes", "perfect", "excess=1", "excess>=2",
                      "max_excess", "ceiling", "at_bound", "violations"});
  const ExactPebbler exact;
  const int min_edges = left + right - 1;
  for (int m = min_edges; m <= left * right; ++m) {
    const std::vector<BipartiteGraph> classes =
        EnumerateConnectedBipartite(left, right, m);
    if (classes.empty()) continue;
    int perfect = 0;
    int excess1 = 0;
    int excess2 = 0;
    int at_bound = 0;
    int violations = 0;
    int64_t max_excess = 0;
    const int64_t ceiling = (m - 1) / 4;
    for (const BipartiteGraph& g : classes) {
      const auto pi = exact.OptimalEffectiveCost(g.ToGraph());
      if (!pi.has_value()) continue;
      const int64_t excess = *pi - m;
      max_excess = std::max(max_excess, excess);
      if (excess == 0) ++perfect;
      if (excess == 1) ++excess1;
      if (excess >= 2) ++excess2;
      if (excess == ceiling && ceiling > 0) ++at_bound;
      if (excess > ceiling) ++violations;
    }
    table.AddRow({FormatInt(m), FormatInt(static_cast<int64_t>(classes.size())),
                  FormatInt(perfect), FormatInt(excess1),
                  FormatInt(excess2), FormatInt(max_excess),
                  FormatInt(ceiling), FormatInt(at_bound),
                  FormatInt(violations)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunCensus(3, 3);
  pebblejoin::RunCensus(4, 3);
  pebblejoin::RunCensus(4, 4);
  std::printf(
      "Expected shape: violations = 0 in every cell (Theorem 3.1 holds\n"
      "exhaustively); perfection dominates at high density; the m = 6 cell\n"
      "of 4x3 contains G_3 with excess 1 — the Theorem 3.3 extremal.\n");
  return 0;
}
