// E4 — The executable face of NP-completeness (Theorem 4.2).
//
// PEBBLE(D) is NP-complete, so the exact solver's cost must blow up while
// the polynomial solvers stay cheap. This bench measures exact solve time
// (Held–Karp below 21 line-graph nodes, branch and bound above) against the
// DFS-tree and local-search solvers on sparse random connected bipartite
// graphs (the hard regime: many forced jumps), plus the branch-and-bound
// node counts. Wall-clock ratios across rows — not absolute numbers — are
// the reproduction target.

#include <algorithm>
#include <cstdio>

#include "graph/generators.h"
#include "pebble/bounds.h"
#include "pebble/cost_model.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/exact_pebbler.h"
#include "solver/ils_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

int64_t EffectiveCost(const Graph& g, const std::vector<int>& order) {
  return static_cast<int64_t>(order.size()) + JumpsOfEdgeOrder(g, order);
}

void Run() {
  std::printf(
      "E4: exact-vs-approximate solve time on sparse hard instances\n"
      "(Theorem 4.2: finding optimal pebblings is NP-complete)\n\n");
  TablePrinter table({"m", "solver", "exact_us", "exact_pi", "dfs_us",
                      "dfs_pi", "local_us", "local_pi", "ils_pi",
                      "local_gap"});

  ExactPebbler::Options exact_options;
  exact_options.max_edges = 30;
  exact_options.bnb_node_budget = 200'000'000;
  const ExactPebbler exact(exact_options);
  const DfsTreePebbler dfs;
  const LocalSearchPebbler local;
  const IlsPebbler ils;

  for (int m : {10, 12, 14, 16, 18, 20, 22, 24, 26}) {
    // Sparse connected bipartite graph: side sizes ~ m/2 keep degrees low,
    // forcing jumps (dense graphs are easy for every solver).
    const int left = m / 2;
    const int right = m - left - 2;
    const Graph g =
        RandomConnectedBipartite(left, std::max(right, 2), m, 31 + m)
            .ToGraph();

    Stopwatch exact_timer;
    const auto exact_order = exact.PebbleConnected(g);
    const double exact_us = exact_timer.ElapsedMicros();

    Stopwatch dfs_timer;
    const auto dfs_order = dfs.PebbleConnected(g);
    const double dfs_us = dfs_timer.ElapsedMicros();

    Stopwatch local_timer;
    const auto local_order = local.PebbleConnected(g);
    const double local_us = local_timer.ElapsedMicros();
    const auto ils_order = ils.PebbleConnected(g);

    const int64_t local_pi = EffectiveCost(g, *local_order);
    std::string exact_us_cell = "-";
    std::string exact_pi_cell = "-";
    std::string gap_cell = "-";
    if (exact_order.has_value()) {
      const int64_t exact_pi = EffectiveCost(g, *exact_order);
      exact_us_cell = FormatDouble(exact_us, 0);
      exact_pi_cell = FormatInt(exact_pi);
      gap_cell = FormatDouble(
          static_cast<double>(local_pi) / static_cast<double>(exact_pi), 4);
    }
    table.AddRow({FormatInt(m), m <= 20 ? "held-karp" : "b&b",
                  exact_us_cell, exact_pi_cell, FormatDouble(dfs_us, 0),
                  FormatInt(EffectiveCost(g, *dfs_order)),
                  FormatDouble(local_us, 0), FormatInt(local_pi),
                  FormatInt(EffectiveCost(g, *ils_order)), gap_cell});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: within the held-karp rows, exact_us grows\n"
      "exponentially (2^m table) while dfs_us/local_us grow polynomially;\n"
      "the b&b rows show instance-dependent time (its admissible bound is\n"
      "tight on easy instances). local_gap stays close to 1.\n");
}

void RunWorstCaseScaling() {
  std::printf("\nE4b: exact solver on the G_n family itself\n\n");
  TablePrinter table({"n", "m", "solver", "exact_us", "exact_pi",
                      "closed_form"});
  ExactPebbler::Options exact_options;
  exact_options.max_edges = 26;
  exact_options.bnb_node_budget = 200'000'000;
  const ExactPebbler exact(exact_options);
  for (int n = 5; n <= 13; ++n) {
    const Graph g = WorstCaseFamily(n).ToGraph();
    Stopwatch timer;
    const auto order = exact.PebbleConnected(g);
    const double micros = timer.ElapsedMicros();
    if (!order.has_value()) {
      table.AddRow({FormatInt(n), FormatInt(g.num_edges()),
                    g.num_edges() <= 20 ? "held-karp" : "b&b", "-", "-",
                    FormatInt(WorstCaseFamilyOptimalCost(n))});
      continue;
    }
    table.AddRow({FormatInt(n), FormatInt(g.num_edges()),
                  g.num_edges() <= 20 ? "held-karp" : "b&b",
                  FormatDouble(micros, 0),
                  FormatInt(EffectiveCost(g, *order)),
                  FormatInt(WorstCaseFamilyOptimalCost(n))});
  }
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  pebblejoin::RunWorstCaseScaling();
  return 0;
}
