// E12 (Section 5 open problem) — partitioned joins.
//
// The paper closes by asking how hard it is to map R and S into fragments
// R₁…R_p, S₁…S_q so that few sub-joins Rᵢ ⋈ Sⱼ must run; it notes the
// problem is NP-complete for all three predicate classes and conjectures
// equijoins admit good approximations. This bench makes the conjecture
// concrete: component-aware co-partitioning is optimal-or-near-optimal on
// equijoin graphs (their components are the keys), while on general
// (set-containment-shaped) graphs the same greedy strategy drifts away
// from the exhaustive optimum.

#include <cstdio>

#include "graph/generators.h"
#include "join/join_graph_builder.h"
#include "join/workload.h"
#include "partition/containment_partition.h"
#include "partition/partitioner.h"
#include "util/random.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

// Shuffles the right relation so tuple order carries no accidental
// alignment with the left (real tables are not stored join-sorted).
KeyRelation Shuffled(const KeyRelation& relation, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> tuples = relation.tuples();
  rng.Shuffle(&tuples);
  return KeyRelation(relation.name(), std::move(tuples));
}

void RunEquijoin() {
  std::printf(
      "E12a: partitioned equijoin — touched sub-joins by strategy\n"
      "(p = q = 4 fragments)\n\n");
  TablePrinter table({"keys", "m", "round_robin", "greedy_component",
                      "lower_bound"});
  for (int keys : {8, 16, 32, 64}) {
    EquijoinWorkloadOptions options;
    options.num_keys = keys;
    options.min_left_dup = options.max_left_dup = 2;
    options.min_right_dup = options.max_right_dup = 2;
    options.seed = keys;
    const Realization<int64_t> w = GenerateEquijoinWorkload(options);
    const BipartiteGraph g =
        BuildEquiJoinGraph(w.left, Shuffled(w.right, 17));
    const int fragments = 4;
    table.AddRow(
        {FormatInt(keys), FormatInt(g.num_edges()),
         FormatInt(CountTouchedPairs(
             g, RoundRobinPartition(g, fragments, fragments))),
         FormatInt(CountTouchedPairs(
             g, GreedyComponentPartition(g, fragments))),
         FormatInt(TouchedPairsLowerBound(g, fragments, fragments))});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: greedy co-partitioning touches ~p sub-joins (one\n"
      "per fragment — the hash-join diagonal); round robin scatters each\n"
      "key across fragment pairs and touches several times more.\n"
      "This is the paper's conjecture in action: equijoins partition "
      "well.\n");
}

void RunGeneralVsExhaustive() {
  std::printf(
      "\nE12b: general join graphs — greedy vs the NP-hard optimum\n"
      "(tiny instances, p = q = 2, exhaustive ground truth)\n\n");
  TablePrinter table(
      {"seed", "m", "optimal", "greedy", "round_robin", "lower_bound"});
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const BipartiteGraph g = RandomConnectedBipartite(5, 5, 11, seed);
    const auto best = ExhaustiveOptimalPartition(g, 2, 2);
    if (!best.has_value()) continue;
    table.AddRow(
        {FormatInt(static_cast<int64_t>(seed)), FormatInt(g.num_edges()),
         FormatInt(CountTouchedPairs(g, *best)),
         FormatInt(CountTouchedPairs(g, GreedyComponentPartition(g, 2))),
         FormatInt(CountTouchedPairs(g, RoundRobinPartition(g, 2, 2))),
         FormatInt(TouchedPairsLowerBound(g, 2, 2))});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: on connected general graphs even the optimum\n"
      "touches most sub-joins (nothing decomposes), so greedy's gap is\n"
      "small here but the structure that made equijoins easy is gone.\n");
}

void RunFragmentSweep() {
  std::printf("\nE12c: equijoin sub-joins vs fragment count\n\n");
  TablePrinter table({"fragments", "greedy", "round_robin", "p*q"});
  EquijoinWorkloadOptions options;
  options.num_keys = 48;
  options.min_left_dup = options.max_left_dup = 1;
  options.min_right_dup = options.max_right_dup = 1;
  options.seed = 9;
  const Realization<int64_t> w = GenerateEquijoinWorkload(options);
  const BipartiteGraph g = BuildEquiJoinGraph(w.left, Shuffled(w.right, 3));
  for (int fragments : {2, 4, 8, 12}) {
    table.AddRow(
        {FormatInt(fragments),
         FormatInt(
             CountTouchedPairs(g, GreedyComponentPartition(g, fragments))),
         FormatInt(CountTouchedPairs(
             g, RoundRobinPartition(g, fragments, fragments))),
         FormatInt(static_cast<int64_t>(fragments) * fragments)});
  }
  std::fputs(table.Render().c_str(), stdout);
}

void RunContainmentReplication() {
  std::printf(
      "\nE12d: the replication the paper's intro complains about —\n"
      "distributing a set-containment join over f fragments\n\n");
  TablePrinter table({"fragments", "repl_left_overhead",
                      "elem_route_overhead", "equijoin_overhead",
                      "repl_complete", "route_complete"});
  SetWorkloadOptions options;
  options.num_left = 100;
  options.num_right = 100;
  options.universe = 40;
  options.min_right_size = 4;
  options.max_right_size = 12;
  options.seed = 11;
  const Realization<IntSet> w = GenerateSetWorkload(options);
  for (int fragments : {2, 4, 8, 16}) {
    const ContainmentPartitionPlan replicate =
        ReplicateLeftPlan(w.left, w.right, fragments);
    const ContainmentPartitionPlan routed =
        ElementRoutingPlan(w.left, w.right, fragments);
    table.AddRow(
        {FormatInt(fragments),
         FormatInt(replicate.ReplicationOverhead()),
         FormatInt(routed.ReplicationOverhead()),
         "0",  // equijoins co-hash-partition with zero replication
         PlanIsComplete(w.left, w.right, replicate) ? "yes" : "NO",
         PlanIsComplete(w.left, w.right, routed) ? "yes" : "NO"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: both containment strategies pay overhead that\n"
      "grows with f (replicate-left: (f-1)*|R|; element routing: container\n"
      "fan-out), while equijoins ship every tuple exactly once. This is\n"
      "the intro's \"replication or repeated processing\" made exact.\n");
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunEquijoin();
  pebblejoin::RunGeneralVsExhaustive();
  pebblejoin::RunFragmentSweep();
  pebblejoin::RunContainmentReplication();
  return 0;
}
