// E20 — `pebblejoin serve` throughput/latency: clients x threads sweep.
// E23 — observability overhead: the same load with every request-level
// surface on (client ids on every line, sampled tracing, SLO targets,
// live /statusz + /metrics) vs everything off. Expected: a fixed ~1-2 us
// per request — low single digits of this corpus's ~50 us solves, under
// 1% of any millisecond-scale request — because the surfaces are atomic
// counters, one string field, and an async-written sampled trace, none
// of it on the solve's critical path.
//
// One in-process LineServer per configuration, loopback TCP clients
// replaying the same mixed request corpus with a bounded pipelining
// window (below the server's per-connection in-flight cap, so nothing is
// shed and every line is solved). Reported per cell: wall clock, solved
// lines per second, and the p50/p95 enqueue-to-response latency a client
// observes.
//
// Expected shape: throughput grows with server threads while solve work
// is the bottleneck and with client count while the single-connection
// pipeline is (one client cannot keep the pool busy); on a small host the
// curves flatten as soon as the physical cores are covered, and p95 rises
// with concurrency — the queueing cost of sharing one engine. The
// `errors` column must stay 0: under this load profile admission never
// sheds, so every response is a solved analysis.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "engine/solve_engine.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "io/graph_io.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "serve/line_server.h"
#include "serve/serve_options.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

constexpr int kCorpusLines = 96;
constexpr int kWindow = 4;  // below per_conn_inflight: nothing is shed

std::vector<std::string> MakeCorpus() {
  std::vector<std::string> corpus;
  corpus.reserve(kCorpusLines);
  for (int i = 0; i < kCorpusLines; ++i) {
    BipartiteGraph g;
    switch (i % 3) {
      case 0:
        g = WorstCaseFamily(4 + i % 3);
        break;
      case 1:
        g = RandomConnectedBipartite(5, 5, 12, /*seed=*/1 + i);
        break;
      default:
        g = DisjointUnion(CompleteBipartite(3, 3), StarGraph(4));
        break;
    }
    corpus.push_back("{\"graph\": \"" + JsonEscape(SerializeBipartiteGraph(g)) +
                     "\"}");
  }
  return corpus;
}

struct ClientStats {
  bool ok = false;
  int64_t errors = 0;                // responses carrying "error"
  std::vector<double> latencies_ms;  // enqueue-to-response per line
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// One blocking client: window-bounded pipelining over its line share.
void RunClient(int port, const std::vector<std::string>* lines,
               ClientStats* stats) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto t0 = std::chrono::steady_clock::now();
  std::deque<double> send_ms;
  std::string inbox;
  size_t sent = 0;
  size_t received = 0;
  char buf[4096];
  while (received < lines->size()) {
    while (sent < lines->size() && sent - received < kWindow) {
      const std::string out = (*lines)[sent] + "\n";
      size_t off = 0;
      while (off < out.size()) {
        const ssize_t n =
            ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n <= 0 && errno != EINTR) {
          ::close(fd);
          return;
        }
        if (n > 0) off += static_cast<size_t>(n);
      }
      send_ms.push_back(MsSince(t0));
      ++sent;
    }
    size_t nl;
    while ((nl = inbox.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0 && errno != EINTR) {
        ::close(fd);
        return;
      }
      if (n > 0) inbox.append(buf, static_cast<size_t>(n));
    }
    const std::string line = inbox.substr(0, nl);
    inbox.erase(0, nl + 1);
    stats->latencies_ms.push_back(MsSince(t0) - send_ms.front());
    send_ms.pop_front();
    if (line.find("\"error\"") != std::string::npos) ++stats->errors;
    ++received;
  }
  ::close(fd);
  stats->ok = true;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

void RunServeSweep(BenchReport* report) {
  std::printf(
      "E20: serve throughput/latency, clients x server threads —\n"
      "hardware threads on this host: %u, corpus: %d lines, window: %d\n\n",
      std::thread::hardware_concurrency(), kCorpusLines, kWindow);
  TablePrinter table({"clients", "threads", "lines", "wall_ms", "lines_per_s",
                      "p50_ms", "p95_ms", "errors"});

  const std::vector<std::string> corpus = MakeCorpus();
  for (int threads : {1, 2, 4}) {
    for (int clients : {1, 4, 8}) {
      SolveEngine engine;
      ServeOptions options;
      options.port = 0;
      options.threads = threads;
      options.poll_tick_ms = 5;
      LineServer server(&engine, options);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
        return;
      }

      // Deterministic round-robin split of the corpus over the clients.
      std::vector<std::vector<std::string>> shares(clients);
      for (int i = 0; i < kCorpusLines; ++i) {
        shares[i % clients].push_back(corpus[i]);
      }

      Stopwatch timer;
      std::vector<ClientStats> stats(clients);
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back(RunClient, server.port(), &shares[c], &stats[c]);
      }
      for (std::thread& t : workers) t.join();
      const double wall_ms = timer.ElapsedMicros() / 1000.0;

      server.BeginDrain();
      server.Wait();

      bool all_ok = true;
      int64_t errors = 0;
      std::vector<double> latencies;
      for (const ClientStats& s : stats) {
        all_ok = all_ok && s.ok;
        errors += s.errors;
        latencies.insert(latencies.end(), s.latencies_ms.begin(),
                         s.latencies_ms.end());
      }
      if (!all_ok) {
        std::fprintf(stderr, "bench_serve: a client failed mid-run\n");
        return;
      }
      table.AddRow({FormatInt(clients), FormatInt(threads),
                    FormatInt(kCorpusLines), FormatDouble(wall_ms, 2),
                    FormatDouble(wall_ms > 0
                                     ? kCorpusLines / (wall_ms / 1000.0)
                                     : 0.0,
                                 1),
                    FormatDouble(Percentile(latencies, 0.50), 2),
                    FormatDouble(Percentile(latencies, 0.95), 2),
                    FormatInt(errors)});
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("serve_sweep", table);
  std::printf(
      "\nExpected shape: errors = 0 everywhere; lines_per_s grows with\n"
      "clients (one pipeline cannot saturate the engine) and with threads\n"
      "until the host's cores are covered; p95_ms grows with concurrency —\n"
      "the queueing cost of multiplexing one shared engine.\n");
}

// Minimal blocking HTTP GET against the serve listener (one request per
// connection, the server closes after responding).
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

// One measured pass of the fixed load profile (1 client x 1 engine
// thread over `lines`); with `trace_sample` > 0, every surface is armed
// (ids, window accounting, 1-in-`trace_sample` tracing, SLO targets) and
// /statusz + /metrics are scraped outside the timed region to confirm
// they render from the freshly written rings. Scrapes are deliberately
// NOT concurrent with the timed window: a scrape is a cadence cost
// (~1-2 ms each, and on a single-core host it displaces solve work 1:1),
// and at a production scrape interval (>= 10 s, matching the ring's
// bucket width) the expected number of scrapes inside a ~200 ms pass is
// zero — a fast poller would over-represent scrape frequency by ~2
// orders of magnitude. Returns the wall clock in ms, or -1 on a client
// failure.
double RunOverheadPass(const std::vector<std::string>& lines,
                       int64_t trace_sample, const std::string& trace_dir,
                       std::vector<double>* latencies) {
  // Serial profile on purpose: one client, one engine thread. Every
  // microsecond a surface spends on the request path lands directly on
  // the wall clock — concurrency would let spare cores absorb exactly
  // the cost this experiment exists to expose, and on the single-core CI
  // host the 12-thread E20 profile adds ~±7% scheduler jitter that
  // swamps a ~1% effect.
  constexpr int kClients = 1;
  const bool obs = trace_sample > 0;
  SolveEngine engine;
  ServeOptions options;
  options.port = 0;
  options.threads = 1;
  options.poll_tick_ms = 5;
  if (obs) {
    options.trace_sample = trace_sample;
    options.trace_dir = trace_dir;
    options.slo_p99_ms = 1000;
    options.slo_error_rate = 0.01;
  }
  LineServer server(&engine, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    return -1.0;
  }

  std::vector<std::vector<std::string>> shares(kClients);
  for (size_t i = 0; i < lines.size(); ++i) {
    shares[i % kClients].push_back(lines[i]);
  }

  if (obs) {
    // Warm the HTTP path (first-scrape allocations) before the clock runs.
    (void)HttpGet(server.port(), "/statusz");
  }

  Stopwatch timer;
  std::vector<ClientStats> stats(kClients);
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back(RunClient, server.port(), &shares[c], &stats[c]);
  }
  for (std::thread& t : workers) t.join();
  const double wall_ms = timer.ElapsedMicros() / 1000.0;

  if (obs) {
    // Post-pass scrape: the surfaces must render from the rings the pass
    // just filled. A failure here voids the pass.
    const std::string status = HttpGet(server.port(), "/statusz");
    const std::string metrics = HttpGet(server.port(), "/metrics");
    if (status.find("\"window\"") == std::string::npos ||
        metrics.find("pebblejoin_serve_window_requests") ==
            std::string::npos) {
      std::fprintf(stderr, "bench_serve: live surfaces failed to render\n");
      return -1.0;
    }
  }
  server.BeginDrain();
  server.Wait();

  for (const ClientStats& s : stats) {
    if (!s.ok || s.errors != 0) {
      std::fprintf(stderr, "bench_serve: overhead client failed\n");
      return -1.0;
    }
    latencies->insert(latencies->end(), s.latencies_ms.begin(),
                      s.latencies_ms.end());
  }
  return wall_ms;
}

void RunObsOverhead(BenchReport* report) {
  constexpr int kRepeat = 32;  // 32 x 96 = 3072 lines per pass, so the
                               // per-pass wall is ~100x any fixed cost
  constexpr int kPasses = 9;   // best-of-9 per mode: noise only ever adds
                               // wall time, so min converges to true cost
                               // (the single-core CI host jitters ~5%)

  // The observability-on corpus carries a client id on every line; the
  // off corpus is the id-less baseline.
  const std::vector<std::string> base = MakeCorpus();
  std::vector<std::string> plain;
  std::vector<std::string> with_ids;
  for (int r = 0; r < kRepeat; ++r) {
    for (size_t i = 0; i < base.size(); ++i) {
      plain.push_back(base[i]);
      std::string tagged = base[i];
      const size_t brace = tagged.rfind('}');
      tagged.insert(brace, ", \"id\": \"b" +
                               std::to_string(r * base.size() + i) + "\"");
      with_ids.push_back(std::move(tagged));
    }
  }

  char trace_dir_template[] = "/tmp/pebblejoin-bench-traces-XXXXXX";
  const char* trace_dir = ::mkdtemp(trace_dir_template);
  if (trace_dir == nullptr) trace_dir = "/tmp";

  std::printf(
      "\nE23: observability overhead — ids on every line, sliding-window\n"
      "accounting, SLO targets, /statusz and /metrics verified live after\n"
      "each pass — vs all surfaces off. Two sampled-tracing rates: the\n"
      "production-shaped 1-in-1024 (~0.1%%, ~20 traces/s at this\n"
      "throughput) and the aggressive 1-in-64, which prices the sampling\n"
      "knob itself: one trace costs ~150 us to serialize and write —\n"
      "several solves' worth of CPU — so its share is sample_rate-bound.\n"
      "%zu lines per pass, best of %d passes per mode.\n\n",
      plain.size(), kPasses);

  // Mode 0: all surfaces off. Mode 1: the realistic config the <2% claim
  // is about. Mode 2: same but sampling 16x hotter.
  constexpr int kModes = 3;
  const int64_t kTraceSample[kModes] = {0, 1024, 64};
  const char* kModeNames[kModes] = {"off", "on", "on-trace64"};
  // Modes interleave within each pass iteration, and the reported delta
  // compares per-mode minima: noise (scheduler preemption, a noisy
  // neighbor) only ever adds wall time, so the min over passes converges
  // on each mode's noise-free floor. (A paired per-iteration median was
  // tried and rejected: the first mode of an iteration runs coldest, and
  // that position bias skews every pairwise delta the same way.)
  double wall[kModes] = {-1.0, -1.0, -1.0};
  std::vector<double> lat[kModes];
  for (int pass = 0; pass < kPasses; ++pass) {
    for (int mode = 0; mode < kModes; ++mode) {
      std::vector<double> pass_lat;
      const double ms =
          RunOverheadPass(mode == 0 ? plain : with_ids, kTraceSample[mode],
                          trace_dir, &pass_lat);
      if (ms < 0) return;
      if (wall[mode] < 0 || ms < wall[mode]) {
        wall[mode] = ms;
        lat[mode] = std::move(pass_lat);
      }
    }
  }

  // Sampled traces are scratch output; sweep the temp dir.
  if (DIR* dir = ::opendir(trace_dir)) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind("trace-", 0) == 0) {
        ::unlink((std::string(trace_dir) + "/" + name).c_str());
      }
    }
    ::closedir(dir);
    ::rmdir(trace_dir);
  }

  TablePrinter table({"mode", "lines", "wall_ms", "lines_per_s", "p50_ms",
                      "p95_ms", "delta_pct"});
  for (int mode = 0; mode < kModes; ++mode) {
    const double delta_pct =
        (mode > 0 && wall[0] > 0) ? (wall[mode] - wall[0]) / wall[0] * 100.0
                                  : 0.0;
    table.AddRow(
        {kModeNames[mode], FormatInt(static_cast<int64_t>(plain.size())),
         FormatDouble(wall[mode], 2),
         FormatDouble(wall[mode] > 0
                          ? plain.size() / (wall[mode] / 1000.0)
                          : 0.0,
                      1),
         FormatDouble(Percentile(lat[mode], 0.50), 2),
         FormatDouble(Percentile(lat[mode], 0.95), 2),
         FormatDouble(delta_pct, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("obs_overhead", table);
  std::printf(
      "\nExpected shape: `on` delta_pct in the low single digits — the\n"
      "fixed per-request cost is ~1-2 us (parsing one extra key, echoing\n"
      "one string field; window updates are relaxed atomics and sampled\n"
      "trace writes are handed to the async writer thread), which is\n"
      "~2-4%% of the ~50 us solves in this corpus and under 1%% of any\n"
      "millisecond-scale request. `on-trace64` prices aggressive\n"
      "sampling: ~48 traces x ~150 us each is real CPU that a\n"
      "single-core host pays on the wall clock (a spare core absorbs it\n"
      "elsewhere). Scrape cost is a cadence cost, not a per-request\n"
      "cost: ~1-2 ms per scrape, zero expected scrapes inside a pass at\n"
      "a >= 10 s production interval.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("serve", argc, argv);
  pebblejoin::RunServeSweep(&report);
  pebblejoin::RunObsOverhead(&report);
  return report.Finish() ? 0 : 1;
}
