// E20 — `pebblejoin serve` throughput/latency: clients x threads sweep.
//
// One in-process LineServer per configuration, loopback TCP clients
// replaying the same mixed request corpus with a bounded pipelining
// window (below the server's per-connection in-flight cap, so nothing is
// shed and every line is solved). Reported per cell: wall clock, solved
// lines per second, and the p50/p95 enqueue-to-response latency a client
// observes.
//
// Expected shape: throughput grows with server threads while solve work
// is the bottleneck and with client count while the single-connection
// pipeline is (one client cannot keep the pool busy); on a small host the
// curves flatten as soon as the physical cores are covered, and p95 rises
// with concurrency — the queueing cost of sharing one engine. The
// `errors` column must stay 0: under this load profile admission never
// sheds, so every response is a solved analysis.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "engine/solve_engine.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "io/graph_io.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "serve/line_server.h"
#include "serve/serve_options.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

constexpr int kCorpusLines = 96;
constexpr int kWindow = 4;  // below per_conn_inflight: nothing is shed

std::vector<std::string> MakeCorpus() {
  std::vector<std::string> corpus;
  corpus.reserve(kCorpusLines);
  for (int i = 0; i < kCorpusLines; ++i) {
    BipartiteGraph g;
    switch (i % 3) {
      case 0:
        g = WorstCaseFamily(4 + i % 3);
        break;
      case 1:
        g = RandomConnectedBipartite(5, 5, 12, /*seed=*/1 + i);
        break;
      default:
        g = DisjointUnion(CompleteBipartite(3, 3), StarGraph(4));
        break;
    }
    corpus.push_back("{\"graph\": \"" + JsonEscape(SerializeBipartiteGraph(g)) +
                     "\"}");
  }
  return corpus;
}

struct ClientStats {
  bool ok = false;
  int64_t errors = 0;                // responses carrying "error"
  std::vector<double> latencies_ms;  // enqueue-to-response per line
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// One blocking client: window-bounded pipelining over its line share.
void RunClient(int port, const std::vector<std::string>* lines,
               ClientStats* stats) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto t0 = std::chrono::steady_clock::now();
  std::deque<double> send_ms;
  std::string inbox;
  size_t sent = 0;
  size_t received = 0;
  char buf[4096];
  while (received < lines->size()) {
    while (sent < lines->size() && sent - received < kWindow) {
      const std::string out = (*lines)[sent] + "\n";
      size_t off = 0;
      while (off < out.size()) {
        const ssize_t n =
            ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n <= 0 && errno != EINTR) {
          ::close(fd);
          return;
        }
        if (n > 0) off += static_cast<size_t>(n);
      }
      send_ms.push_back(MsSince(t0));
      ++sent;
    }
    size_t nl;
    while ((nl = inbox.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0 && errno != EINTR) {
        ::close(fd);
        return;
      }
      if (n > 0) inbox.append(buf, static_cast<size_t>(n));
    }
    const std::string line = inbox.substr(0, nl);
    inbox.erase(0, nl + 1);
    stats->latencies_ms.push_back(MsSince(t0) - send_ms.front());
    send_ms.pop_front();
    if (line.find("\"error\"") != std::string::npos) ++stats->errors;
    ++received;
  }
  ::close(fd);
  stats->ok = true;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

void RunServeSweep(BenchReport* report) {
  std::printf(
      "E20: serve throughput/latency, clients x server threads —\n"
      "hardware threads on this host: %u, corpus: %d lines, window: %d\n\n",
      std::thread::hardware_concurrency(), kCorpusLines, kWindow);
  TablePrinter table({"clients", "threads", "lines", "wall_ms", "lines_per_s",
                      "p50_ms", "p95_ms", "errors"});

  const std::vector<std::string> corpus = MakeCorpus();
  for (int threads : {1, 2, 4}) {
    for (int clients : {1, 4, 8}) {
      SolveEngine engine;
      ServeOptions options;
      options.port = 0;
      options.threads = threads;
      options.poll_tick_ms = 5;
      LineServer server(&engine, options);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
        return;
      }

      // Deterministic round-robin split of the corpus over the clients.
      std::vector<std::vector<std::string>> shares(clients);
      for (int i = 0; i < kCorpusLines; ++i) {
        shares[i % clients].push_back(corpus[i]);
      }

      Stopwatch timer;
      std::vector<ClientStats> stats(clients);
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back(RunClient, server.port(), &shares[c], &stats[c]);
      }
      for (std::thread& t : workers) t.join();
      const double wall_ms = timer.ElapsedMicros() / 1000.0;

      server.BeginDrain();
      server.Wait();

      bool all_ok = true;
      int64_t errors = 0;
      std::vector<double> latencies;
      for (const ClientStats& s : stats) {
        all_ok = all_ok && s.ok;
        errors += s.errors;
        latencies.insert(latencies.end(), s.latencies_ms.begin(),
                         s.latencies_ms.end());
      }
      if (!all_ok) {
        std::fprintf(stderr, "bench_serve: a client failed mid-run\n");
        return;
      }
      table.AddRow({FormatInt(clients), FormatInt(threads),
                    FormatInt(kCorpusLines), FormatDouble(wall_ms, 2),
                    FormatDouble(wall_ms > 0
                                     ? kCorpusLines / (wall_ms / 1000.0)
                                     : 0.0,
                                 1),
                    FormatDouble(Percentile(latencies, 0.50), 2),
                    FormatDouble(Percentile(latencies, 0.95), 2),
                    FormatInt(errors)});
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("serve_sweep", table);
  std::printf(
      "\nExpected shape: errors = 0 everywhere; lines_per_s grows with\n"
      "clients (one pipeline cannot saturate the engine) and with threads\n"
      "until the host's cores are covered; p95_ms grows with concurrency —\n"
      "the queueing cost of multiplexing one shared engine.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("serve", argc, argv);
  pebblejoin::RunServeSweep(&report);
  return report.Finish() ? 0 : 1;
}
