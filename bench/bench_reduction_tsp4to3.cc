// E5 — The diamond-gadget L-reduction TSP-4(1,2) → TSP-3(1,2)
// (Theorem 4.3, Figure 2).
//
// Measures, over random degree-≤4 instances: the size blow-up |V(H)|/|V(G)|
// (bounded by the gadget size: 9 here, ≤ 11 in the paper's figure), the
// observed α = OPT(H)/OPT(G), and the observed β over lifted feasible
// solutions — all of which must respect the L-reduction inequalities of
// Definition 4.2 with α = 9, β = 1.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "graph/generators.h"
#include "reductions/l_reduction.h"
#include "reductions/tsp4_to_tsp3.h"
#include "tsp/branch_and_bound.h"
#include "tsp/held_karp.h"
#include "util/random.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

int64_t ExactCost(const Tsp12Instance& instance) {
  if (instance.num_nodes() <= kMaxHeldKarpNodes) {
    return HeldKarpSolve(instance)->cost;
  }
  BranchAndBoundOptions options;
  options.node_budget = 500'000'000;
  const BranchAndBoundResult r = BranchAndBoundSolve(instance, options);
  return r.best.cost;  // proven optimal on these sizes in practice
}

void Run() {
  std::printf(
      "E5: L-reduction TSP-4(1,2) -> TSP-3(1,2) via diamond gadgets\n"
      "(Theorem 4.3; 9-node gadget, paper's figure uses 11 — see "
      "DESIGN.md)\n\n");
  TablePrinter table({"seed", "|V(G)|", "|V(H)|", "blowup", "deg4_nodes",
                      "OPT(G)", "OPT(H)", "alpha_obs", "beta_max", "p1",
                      "p2"});

  Rng rng(2024);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 6 + static_cast<int>(seed % 3);
    const Tsp12Instance g(
        RandomConnectedBoundedDegree(n, 4, n / 2 + 2, seed));
    const Tsp4ToTsp3Reduction reduction(g);

    int deg4 = 0;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (reduction.IsDiamond(v)) ++deg4;
    }

    LReductionSample sample;
    sample.opt_x = ExactCost(g);
    sample.opt_fx = ExactCost(reduction.h());

    // Feasible solutions of H: lifted random tours of G; take the worst
    // observed β.
    double beta_max = 0;
    bool p2_all = true;
    for (int trial = 0; trial < 12; ++trial) {
      const Tour s = reduction.LiftTour(rng.Permutation(g.num_nodes()));
      sample.cost_s = TourCost(reduction.h(), s);
      sample.cost_gs = TourCost(g, reduction.MapTourBack(s));
      const double beta = ObservedBeta(sample);
      if (beta != std::numeric_limits<double>::infinity()) {
        beta_max = std::max(beta_max, beta);
      }
      p2_all = p2_all && SatisfiesProperty2(sample, 1.0);
    }

    table.AddRow(
        {FormatInt(static_cast<int64_t>(seed)), FormatInt(g.num_nodes()),
         FormatInt(reduction.h().num_nodes()),
         FormatDouble(static_cast<double>(reduction.h().num_nodes()) /
                          static_cast<double>(g.num_nodes()),
                      3),
         FormatInt(deg4), FormatInt(sample.opt_x), FormatInt(sample.opt_fx),
         FormatDouble(ObservedAlpha(sample), 3),
         FormatDouble(beta_max, 3),
         SatisfiesProperty1(sample, 9.0) ? "ok" : "VIOLATED",
         p2_all ? "ok" : "VIOLATED"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: blowup <= 9, alpha_obs <= 9, beta_max <= 1, and\n"
      "both L-reduction properties (p1 with alpha=9, p2 with beta=1) hold\n"
      "on every row.\n");
}

void RunGadgetCensus() {
  std::printf("\nE5b: the diamond gadget itself (Figure 2 analogue)\n\n");
  TablePrinter table({"property", "value"});
  table.AddRow({"gadget nodes", "9 (paper's figure: 11)"});
  table.AddRow({"corners", "4, internal degree 2 each"});
  table.AddRow({"max internal degree", "3"});
  table.AddRow({"corner pairs Hamiltonian-connected", "6 / 6"});
  table.AddRow({"two corner-paths can cover gadget", "no (checked "
                "exhaustively in tests)"});
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::Run();
  pebblejoin::RunGadgetCensus();
  return 0;
}
