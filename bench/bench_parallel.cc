// E18 — Parallel per-component solving: components x threads sweep.
//
// Lemma 2.2 makes pi additive over connected components, which turns a
// multi-component join graph into an embarrassingly parallel workload.
// This experiment fixes a per-component instance size, sweeps the number
// of components and the ComponentPebbler thread count, and records wall
// clock, speedup over the sequential drive, and — the determinism
// contract — that every thread count produces the identical cost.
//
// Speedup is bounded by the physical core count: on a single-core host
// every row reports ~1.0x and the sweep degenerates to an overhead
// measurement (the honest result); on a k-core host the 64-component rows
// approach min(k, threads)x.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "pebble/scheme_verifier.h"
#include "obs/bench_report.h"
#include "solver/component_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/ils_pebbler.h"
#include "util/budget.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

// A join graph with `components` random connected blobs of ~24 edges each:
// heavy enough that ILS dominates the wall clock, small enough that the
// whole sweep stays interactive.
Graph MakeWorkload(int components) {
  BipartiteGraph g = RandomConnectedBipartite(6, 6, 24, /*seed=*/1);
  for (int c = 1; c < components; ++c) {
    g = DisjointUnion(
        g, RandomConnectedBipartite(6, 6, 24, /*seed=*/1 + c));
  }
  return g.ToGraph();
}

void RunThreadSweep(BenchReport* report) {
  std::printf(
      "E18: parallel per-component solving (Lemma 2.2 as a parallelism\n"
      "license) — hardware threads on this host: %u\n\n",
      std::thread::hardware_concurrency());
  TablePrinter table({"components", "m", "threads", "pi", "time_ms",
                      "speedup", "identical", "valid"});

  const IlsPebbler ils;
  const GreedyWalkPebbler greedy;
  for (int components : {8, 16, 64}) {
    const Graph g = MakeWorkload(components);
    int64_t baseline_cost = -1;
    double baseline_ms = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      ComponentPebbler::Options options;
      options.threads = threads;
      const ComponentPebbler driver(&ils, &greedy, options);
      BudgetContext ctx{SolveBudget{}};
      Stopwatch timer;
      const PebbleSolution solution = driver.Solve(g, &ctx);
      const double elapsed_ms = timer.ElapsedMicros() / 1000.0;
      if (threads == 1) {
        baseline_cost = solution.effective_cost;
        baseline_ms = elapsed_ms;
      }
      const bool valid = VerifyEdgeOrder(g, solution.edge_order).valid;
      table.AddRow(
          {FormatInt(components), FormatInt(g.num_edges()),
           FormatInt(threads), FormatInt(solution.effective_cost),
           FormatDouble(elapsed_ms, 2),
           FormatDouble(elapsed_ms > 0 ? baseline_ms / elapsed_ms : 0.0, 2),
           solution.effective_cost == baseline_cost ? "yes" : "NO",
           valid ? "yes" : "NO"});
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("thread_sweep", table);
  std::printf(
      "\nExpected shape: identical = yes and valid = yes on every row (the\n"
      "determinism contract); speedup ~= min(threads, cores, components)\n"
      "on the 64-component rows, and ~1.0 on a single-core host.\n");
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("parallel", argc, argv);
  pebblejoin::RunThreadSweep(&report);
  return report.Finish() ? 0 : 1;
}
