// E19 — SolveEngine session reuse: requests x threads sweep.
//
// A long-lived SolveEngine owns one ThreadPool and one solver stack across
// many requests; the alternative is constructing a fresh engine (and, when
// the request is parallel, a fresh pool plus its worker threads) per call.
// This experiment replays the same request stream both ways and records the
// wall clock per mode, the reuse speedup, and — the session contract — that
// both modes produce byte-identical analyses modulo timings.
//
// The gap is pure fixed overhead (thread spawn/join, allocator traffic), so
// it is widest on small graphs at high thread counts and fades as solve
// time dominates. On a single-core host the pool path adds overhead rather
// than parallelism, so reuse >= per-call is the expected shape but the
// absolute speedups stay modest (the honest result).

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "engine/solve_engine.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "obs/bench_report.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

// The request stream: multi-component graphs (so request.threads matters)
// small enough that per-request fixed costs are visible in the timing.
std::vector<BipartiteGraph> MakeRequests(int count) {
  std::vector<BipartiteGraph> requests;
  requests.reserve(count);
  for (int i = 0; i < count; ++i) {
    BipartiteGraph g = RandomConnectedBipartite(5, 5, 12, /*seed=*/1 + i);
    g = DisjointUnion(g, RandomConnectedBipartite(4, 5, 10, /*seed=*/101 + i));
    g = DisjointUnion(g, WorstCaseFamily(3 + i % 3));
    requests.push_back(std::move(g));
  }
  return requests;
}

// Replays the stream; `shared` null means fresh-engine-per-request mode.
// Returns wall millis and appends each analysis digest to `digests`.
double Replay(const std::vector<BipartiteGraph>& requests, int threads,
              SolveEngine* shared, std::vector<std::string>* digests) {
  Stopwatch timer;
  for (const BipartiteGraph& g : requests) {
    SolveEngine fresh;
    SolveEngine* engine = shared != nullptr ? shared : &fresh;
    SolveRequest request;
    request.graph = &g;
    request.threads = threads;
    digests->push_back(AnalysisJson(engine->Solve(request).analysis));
  }
  return timer.ElapsedMicros() / 1000.0;
}

// Strips wall-clock fields so the two modes can be compared byte for byte.
std::string NormalizeTimings(std::string json);  // defined below

void RunReuseSweep(BenchReport* report) {
  std::printf(
      "E19: SolveEngine session reuse vs a fresh engine per request —\n"
      "hardware threads on this host: %u\n\n",
      std::thread::hardware_concurrency());
  TablePrinter table({"requests", "threads", "per_call_ms", "reuse_ms",
                     "speedup", "identical"});

  const std::vector<BipartiteGraph> requests = MakeRequests(24);
  for (int threads : {1, 4, 8}) {
    // Warm both paths once so neither pays first-touch costs in the timing.
    {
      std::vector<std::string> scratch;
      Replay(requests, threads, nullptr, &scratch);
    }
    std::vector<std::string> per_call;
    const double per_call_ms = Replay(requests, threads, nullptr, &per_call);

    SolveEngine session;
    std::vector<std::string> reused;
    const double reuse_ms = Replay(requests, threads, &session, &reused);

    bool identical = per_call.size() == reused.size();
    for (size_t i = 0; identical && i < per_call.size(); ++i) {
      identical = NormalizeTimings(per_call[i]) == NormalizeTimings(reused[i]);
    }
    table.AddRow({FormatInt(static_cast<int64_t>(requests.size())),
                  FormatInt(threads), FormatDouble(per_call_ms, 2),
                  FormatDouble(reuse_ms, 2),
                  FormatDouble(reuse_ms > 0 ? per_call_ms / reuse_ms : 0.0, 2),
                  identical ? "yes" : "NO"});
  }
  std::fputs(table.Render().c_str(), stdout);
  report->AddTable("reuse_sweep", table);
  std::printf(
      "\nExpected shape: identical = yes on every row (the session\n"
      "contract), speedup >= ~1.0 everywhere, and growing with the thread\n"
      "count as per-call mode pays a pool construction per request.\n");
}

// Zeroes the integer value of every `*_us` key plus the budget wall-clock
// counters — the same rule tests/json_test_util.h applies.
std::string NormalizeTimings(std::string json) {
  size_t pos = 0;
  while ((pos = json.find("\":", pos)) != std::string::npos) {
    size_t key_start = json.rfind('"', pos - 1);
    if (key_start == std::string::npos) {
      pos += 2;
      continue;
    }
    const std::string key = json.substr(key_start + 1, pos - key_start - 1);
    const bool timing =
        (key.size() > 3 && key.compare(key.size() - 3, 3, "_us") == 0) ||
        key == "budget_polls" || key == "budget_time_to_stop_ms";
    pos += 2;
    if (!timing) continue;
    size_t value_end = pos;
    while (value_end < json.size() &&
           (json[value_end] == '-' || std::isdigit(
                static_cast<unsigned char>(json[value_end])))) {
      ++value_end;
    }
    if (value_end > pos) {
      json.replace(pos, value_end - pos, "0");
      pos += 1;
    }
  }
  return json;
}

}  // namespace
}  // namespace pebblejoin

int main(int argc, char** argv) {
  pebblejoin::BenchReport report("engine", argc, argv);
  pebblejoin::RunReuseSweep(&report);
  return report.Finish() ? 0 : 1;
}
