// E3 — The universal upper bound (Theorem 3.1, Lemma 3.1).
//
// Over random connected bipartite graphs of varying density, every solver's
// cost ratio π/m stays at or under the Theorem 3.1 bound
// (m + ⌊(m−1)/4⌋)/m ≤ 1.25, with the DFS-tree construction guaranteeing it
// and local search typically far below. The time columns show the DFS-tree
// solver scaling near-linearly in the line-graph size (Lemma 3.1's
// linear-time claim, measured rather than proved here).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "pebble/bounds.h"
#include "pebble/cost_model.h"
#include "solver/dfs_tree_pebbler.h"
#include "solver/greedy_walk_pebbler.h"
#include "solver/local_search_pebbler.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pebblejoin {
namespace {

int64_t EffectiveCost(const Graph& g, const std::vector<int>& order) {
  return static_cast<int64_t>(order.size()) + JumpsOfEdgeOrder(g, order);
}

struct SolverStats {
  double sum_ratio = 0;
  double max_ratio = 0;
  int violations = 0;  // cases above the Theorem 3.1 bound
  double total_us = 0;
};

void RunDensitySweep() {
  std::printf(
      "E3: random connected bipartite graphs — all solvers vs the\n"
      "Theorem 3.1 bound pi <= m + floor((m-1)/4)\n\n");
  TablePrinter table({"density", "m_avg", "greedy_avg", "greedy_max",
                      "dfs_avg", "dfs_max", "dfs_viol", "local_avg",
                      "local_max"});

  const GreedyWalkPebbler greedy;
  const DfsTreePebbler dfs;
  const LocalSearchPebbler local;
  const int kTrials = 30;

  for (double density : {0.15, 0.3, 0.5, 0.7, 0.9}) {
    SolverStats greedy_stats, dfs_stats, local_stats;
    int64_t total_m = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const int left = 8;
      const int right = 8;
      const int max_m = left * right;
      const int m = std::max(left + right - 1,
                             static_cast<int>(density * max_m));
      const Graph g = RandomConnectedBipartite(left, right, m,
                                               1000 * trial + 17)
                          .ToGraph();
      total_m += g.num_edges();
      const int64_t bound = DfsUpperBoundForConnected(g.num_edges());

      auto run = [&](const Pebbler& solver, SolverStats* stats) {
        Stopwatch timer;
        const auto order = solver.PebbleConnected(g);
        stats->total_us += timer.ElapsedMicros();
        const int64_t cost = EffectiveCost(g, *order);
        const double ratio =
            static_cast<double>(cost) / static_cast<double>(g.num_edges());
        stats->sum_ratio += ratio;
        stats->max_ratio = std::max(stats->max_ratio, ratio);
        if (cost > bound) ++stats->violations;
      };
      run(greedy, &greedy_stats);
      run(dfs, &dfs_stats);
      run(local, &local_stats);
    }
    table.AddRow(
        {FormatDouble(density, 2), FormatInt(total_m / kTrials),
         FormatDouble(greedy_stats.sum_ratio / kTrials, 4),
         FormatDouble(greedy_stats.max_ratio, 4),
         FormatDouble(dfs_stats.sum_ratio / kTrials, 4),
         FormatDouble(dfs_stats.max_ratio, 4),
         FormatInt(dfs_stats.violations),
         FormatDouble(local_stats.sum_ratio / kTrials, 4),
         FormatDouble(local_stats.max_ratio, 4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape: dfs_max <= 1.25 with dfs_viol = 0 everywhere\n"
      "(Theorem 3.1 is a guarantee); local search <= dfs; dense graphs\n"
      "trend toward ratio 1 (their line graphs are nearly Hamiltonian).\n");
}

void RunScaling() {
  std::printf("\nE3b: DFS-tree solver time scaling (Lemma 3.1)\n\n");
  TablePrinter table({"m", "L(G)_edges", "time_us", "us_per_line_edge"});
  const DfsTreePebbler dfs;
  for (int scale : {200, 400, 800, 1600, 3200, 6400}) {
    const int side = scale / 8;
    const Graph g =
        RandomConnectedBipartite(side, side, scale, 99 + scale).ToGraph();
    int64_t line_edges = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      const int64_t d = g.Degree(v);
      line_edges += d * (d - 1) / 2;
    }
    Stopwatch timer;
    const auto order = dfs.PebbleConnected(g);
    const double micros = timer.ElapsedMicros();
    table.AddRow({FormatInt(g.num_edges()), FormatInt(line_edges),
                  FormatDouble(micros, 1),
                  FormatDouble(micros / static_cast<double>(line_edges),
                               4)});
  }
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace
}  // namespace pebblejoin

int main() {
  pebblejoin::RunDensitySweep();
  pebblejoin::RunScaling();
  return 0;
}
